/**
 * @file
 * Implementation of TraceRef parsing and TraceRepository resolution.
 */

#include "sim/trace_ref.hh"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "sim/sweeps.hh"
#include "trace/import.hh"
#include "trace/replay.hh"
#include "trace/replay_cache.hh"
#include "trace/trace.hh"
#include "util/digest.hh"
#include "util/fs.hh"
#include "workloads/workload.hh"

namespace jcache::sim
{

namespace
{

constexpr std::size_t kDigestChars = 16;

bool
isHexDigest(const std::string& digest)
{
    if (digest.size() != kDigestChars)
        return false;
    return std::all_of(digest.begin(), digest.end(), [](char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    });
}

bool
hasPrefix(const std::string& s, const char* prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** The name-ref file beside the replay caches: name -> digest. */
std::string
nameRefPath(const std::string& dir, const std::string& name)
{
    return dir + "/n" + util::fnv1aHex(name) + ".ref";
}

/** Share a registry-owned trace without copying or owning it. */
ResolvedTrace
wrapRegistry(const trace::Trace& t)
{
    ResolvedTrace r;
    r.trace = std::shared_ptr<const trace::Trace>(
        std::shared_ptr<const trace::Trace>(), &t);
    r.source = std::make_shared<trace::TraceReplaySource>(t);
    r.name = t.name();
    r.digest = trace::contentDigest(t);
    r.identity = trace::traceIdentity(t);
    return r;
}

} // namespace

TraceRef
TraceRef::byName(std::string name)
{
    return TraceRef(Kind::Name, std::move(name));
}

TraceRef
TraceRef::byPath(std::string path)
{
    return TraceRef(Kind::Path, std::move(path));
}

TraceRef
TraceRef::byDigest(std::string digest)
{
    fatalIf(!isHexDigest(digest),
            "malformed trace digest (want 16 hex chars): " + digest);
    return TraceRef(Kind::Digest, std::move(digest));
}

std::optional<TraceRef>
TraceRef::parse(const std::string& spec)
{
    Kind kind = Kind::Name;
    std::string value = spec;
    if (hasPrefix(spec, "name:")) {
        value = spec.substr(5);
    } else if (hasPrefix(spec, "path:")) {
        kind = Kind::Path;
        value = spec.substr(5);
    } else if (hasPrefix(spec, "digest:")) {
        kind = Kind::Digest;
        value = spec.substr(7);
    }
    if (value.empty())
        return std::nullopt;
    if (kind == Kind::Digest && !isHexDigest(value))
        return std::nullopt;
    return TraceRef(kind, std::move(value));
}

std::string
TraceRef::spec() const
{
    switch (kind_) {
      case Kind::Path:
        return "path:" + value_;
      case Kind::Digest:
        return "digest:" + value_;
      case Kind::Name:
        break;
    }
    return "name:" + value_;
}

TraceRepository::TraceRepository() = default;

TraceRepository::TraceRepository(Config config)
    : config_(std::move(config))
{
}

ResolvedTrace
TraceRepository::wrapOwned(trace::Trace trace)
{
    ResolvedTrace r;
    auto owned =
        std::make_shared<const trace::Trace>(std::move(trace));
    r.trace = owned;
    r.source = std::make_shared<trace::TraceReplaySource>(*owned);
    r.name = owned->name();
    r.digest = trace::contentDigest(*owned);
    r.identity = trace::traceIdentity(*owned);
    return r;
}

ResolvedTrace
TraceRepository::openMapped(const std::string& digest) const
{
    auto mapped = std::make_shared<trace::MappedReplayCache>(
        trace::replayCachePath(config_.cacheDir, digest));
    if (mapped->digest() != digest)
        throw trace::ReplayCacheError(
            "replay cache digest mismatch: file for " + digest +
            " records " + mapped->digest());
    ResolvedTrace r;
    r.source = mapped;
    r.name = mapped->name();
    r.digest = mapped->digest();
    r.identity = mapped->identity();
    return r;
}

const std::vector<std::string>&
TraceRepository::registryDigests()
{
    if (!registryDigestsReady_) {
        registryDigests_.reserve(config_.registry->size());
        for (const trace::Trace& t : config_.registry->traces())
            registryDigests_.push_back(trace::contentDigest(t));
        registryDigestsReady_ = true;
    }
    return registryDigests_;
}

ResolvedTrace
TraceRepository::resolveName(const std::string& name)
{
    if (config_.registry) {
        if (const trace::Trace* t = config_.registry->find(name))
            return wrapRegistry(*t);
    }

    // A replay-cache directory may already hold this trace from an
    // earlier process: the name-ref file maps the name to its digest
    // so the cache is mapped instead of the generator re-run.
    if (!config_.cacheDir.empty()) {
        std::optional<std::string> digest =
            util::readFileIfExists(nameRefPath(config_.cacheDir, name));
        if (digest && isHexDigest(*digest)) {
            try {
                ResolvedTrace r = openMapped(*digest);
                if (r.name == name)
                    return r;
            } catch (const FatalError&) {
                // Stale or torn ref: fall through to regeneration.
            }
        }
    }

    if (config_.generateUnknownNames) {
        std::unique_ptr<workloads::Workload> workload;
        try {
            workload = workloads::makeWorkload(name);
        } catch (const FatalError&) {
            throw UnknownTraceError("unknown trace name: " + name);
        }
        trace::Trace t = workloads::generateTrace(*workload);
        if (!config_.cacheDir.empty()) {
            trace::ensureReplayCache(t, config_.cacheDir);
            util::atomicWriteFile(nameRefPath(config_.cacheDir, name),
                                  trace::contentDigest(t));
        }
        return wrapOwned(std::move(t));
    }

    throw UnknownTraceError("unknown trace name: " + name);
}

ResolvedTrace
TraceRepository::resolveDigest(const std::string& digest)
{
    auto it = uploads_.find(digest);
    if (it != uploads_.end())
        return it->second;

    if (config_.registry) {
        const std::vector<std::string>& digests = registryDigests();
        for (std::size_t i = 0; i < digests.size(); ++i)
            if (digests[i] == digest)
                return wrapRegistry(config_.registry->traces()[i]);
    }

    if (!config_.cacheDir.empty() &&
        std::filesystem::exists(
            trace::replayCachePath(config_.cacheDir, digest)))
        return openMapped(digest);

    throw UnknownTraceError("unknown trace digest: " + digest);
}

ResolvedTrace
TraceRepository::resolveLocked(const TraceRef& ref)
{
    fatalIf(ref.empty(), "empty trace reference");

    if (ref.kind() == TraceRef::Kind::Path) {
        if (!config_.allowPaths)
            throw UnknownTraceError(
                "path trace references are not allowed here: " +
                ref.value());
        const std::string spec = ref.spec();
        auto it = cache_.find(spec);
        if (it != cache_.end())
            return it->second;
        ResolvedTrace r = wrapOwned(trace::loadAnyTrace(ref.value()));
        cache_.emplace(spec, r);
        return r;
    }

    if (ref.kind() == TraceRef::Kind::Digest)
        // Uploads are their own store (FIFO-evicted); only they can
        // satisfy before the registry, so no spec cache here.
        return resolveDigest(ref.value());

    const std::string spec = ref.spec();
    auto it = cache_.find(spec);
    if (it != cache_.end())
        return it->second;
    ResolvedTrace r = resolveName(ref.value());
    cache_.emplace(spec, r);
    return r;
}

ResolvedTrace
TraceRepository::resolve(const TraceRef& ref)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resolveLocked(ref);
}

ResolvedTrace
TraceRepository::resolveMaterialized(const TraceRef& ref)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ResolvedTrace r = resolveLocked(ref);
    if (r.trace)
        return r;

    // Mapped-only: decode every block into an owned in-memory trace
    // and re-cache the materialized resolution under the same spec.
    trace::Trace t(r.name);
    t.reserve(static_cast<std::size_t>(r.source->records()));
    std::unique_ptr<trace::BlockCursor> cursor =
        r.source->blocks(trace::kDefaultBlockRecords);
    trace::TraceBlock block;
    while (cursor->next(block))
        for (std::size_t i = 0; i < block.count; ++i)
            t.append(block.records[i]);
    ResolvedTrace materialized = wrapOwned(std::move(t));
    cache_[ref.spec()] = materialized;
    return materialized;
}

std::string
TraceRepository::addUpload(trace::Trace trace)
{
    ResolvedTrace r = wrapOwned(std::move(trace));
    std::lock_guard<std::mutex> lock(mutex_);
    std::string digest = r.digest;
    auto it = uploads_.find(digest);
    if (it != uploads_.end()) {
        // Same content re-uploaded (possibly renamed): refresh both
        // the resolution and its place in the eviction order, so an
        // actively re-uploaded trace is not the next FIFO victim.
        it->second = std::move(r);
        auto pos = std::find(uploadOrder_.begin(),
                             uploadOrder_.end(), digest);
        if (pos != uploadOrder_.end())
            uploadOrder_.erase(pos);
        uploadOrder_.push_back(digest);
        return digest;
    }
    uploads_.emplace(digest, std::move(r));
    uploadOrder_.push_back(digest);
    while (uploadOrder_.size() > config_.uploadCapacity) {
        uploads_.erase(uploadOrder_.front());
        uploadOrder_.erase(uploadOrder_.begin());
    }
    return digest;
}

bool
TraceRepository::knowsDigest(const std::string& digest)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (uploads_.count(digest) != 0)
        return true;
    if (config_.registry) {
        const std::vector<std::string>& digests = registryDigests();
        if (std::find(digests.begin(), digests.end(), digest) !=
            digests.end())
            return true;
    }
    return !config_.cacheDir.empty() &&
           std::filesystem::exists(
               trace::replayCachePath(config_.cacheDir, digest));
}

} // namespace jcache::sim
