/**
 * @file
 * Golden differential between the two simulation engines: every cell
 * of the Figure 13-16 grid replayed by the one-pass engine must be
 * byte-identical to the per-cell reference — every counter, every
 * traffic class, and the rendered table/JSON output — plus the
 * configurations the fast lane cannot take (write-back with flush,
 * associative, coarse valid granularity) and the empty trace.
 */

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/json_value.hh"
#include "service/render.hh"
#include "store/store.hh"
#include "sim/engine.hh"
#include "sim/multiconfig.hh"
#include "sim/sweeps.hh"
#include "trace/import.hh"
#include "trace/replay_cache.hh"
#include "util/simd.hh"
#include "workloads/workload.hh"

namespace jcache::sim
{
namespace
{

using core::CacheConfig;
using core::WriteHitPolicy;
using core::WriteMissPolicy;

/** Small but realistic traces; generated once per test binary. */
const std::vector<trace::Trace>&
traces()
{
    static const std::vector<trace::Trace> ts = [] {
        workloads::WorkloadConfig config;
        config.scale = 1;
        std::vector<trace::Trace> out;
        out.push_back(workloads::generateTrace(
            *workloads::makeWorkload("ccom", config)));
        out.push_back(workloads::generateTrace(
            *workloads::makeWorkload("linpack", config)));
        return out;
    }();
    return ts;
}

CacheConfig
config(Count size, unsigned line, WriteHitPolicy hit,
       WriteMissPolicy miss)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.lineBytes = line;
    c.assoc = 1;
    c.hitPolicy = hit;
    c.missPolicy = miss;
    return c;
}

/**
 * The Figure 13-16 grid for one trace: every write-miss policy over
 * the standard cache-size axis (16B lines) and the standard line-size
 * axis (8KB caches), write-through throughout so all four policies
 * are legal.
 */
std::vector<Request>
fig13to16Grid(const trace::Trace& t)
{
    const std::vector<WriteMissPolicy> policies = {
        WriteMissPolicy::FetchOnWrite,
        WriteMissPolicy::WriteValidate,
        WriteMissPolicy::WriteAround,
        WriteMissPolicy::WriteInvalidate,
    };
    std::vector<Request> requests;
    for (Count size : standardCacheSizes())
        for (WriteMissPolicy miss : policies)
            requests.push_back(
                {&t, config(size, 16, WriteHitPolicy::WriteThrough,
                            miss),
                 false});
    for (unsigned line : standardLineSizes())
        for (WriteMissPolicy miss : policies)
            requests.push_back(
                {&t, config(8 * 1024, line,
                            WriteHitPolicy::WriteThrough, miss),
                 false});
    return requests;
}

void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.instructions, b.instructions);

    EXPECT_EQ(a.cache.reads, b.cache.reads);
    EXPECT_EQ(a.cache.writes, b.cache.writes);
    EXPECT_EQ(a.cache.readHits, b.cache.readHits);
    EXPECT_EQ(a.cache.writeHits, b.cache.writeHits);
    EXPECT_EQ(a.cache.readMisses, b.cache.readMisses);
    EXPECT_EQ(a.cache.partialValidReadMisses,
              b.cache.partialValidReadMisses);
    EXPECT_EQ(a.cache.writeMisses, b.cache.writeMisses);
    EXPECT_EQ(a.cache.writeMissFetches, b.cache.writeMissFetches);
    EXPECT_EQ(a.cache.linesFetched, b.cache.linesFetched);
    EXPECT_EQ(a.cache.writesToDirtyLines, b.cache.writesToDirtyLines);
    EXPECT_EQ(a.cache.writeThroughs, b.cache.writeThroughs);
    EXPECT_EQ(a.cache.invalidations, b.cache.invalidations);
    EXPECT_EQ(a.cache.victims, b.cache.victims);
    EXPECT_EQ(a.cache.dirtyVictims, b.cache.dirtyVictims);
    EXPECT_EQ(a.cache.dirtyVictimDirtyBytes,
              b.cache.dirtyVictimDirtyBytes);
    EXPECT_EQ(a.cache.flushedValidLines, b.cache.flushedValidLines);
    EXPECT_EQ(a.cache.flushedDirtyLines, b.cache.flushedDirtyLines);
    EXPECT_EQ(a.cache.flushedDirtyBytes, b.cache.flushedDirtyBytes);
    EXPECT_EQ(a.cache.victimCacheHits, b.cache.victimCacheHits);
    EXPECT_EQ(a.cache.lineAllocs, b.cache.lineAllocs);
    EXPECT_EQ(a.cache.validateFallbacks, b.cache.validateFallbacks);

    EXPECT_EQ(a.fetchTraffic.transactions, b.fetchTraffic.transactions);
    EXPECT_EQ(a.fetchTraffic.bytes, b.fetchTraffic.bytes);
    EXPECT_EQ(a.writeThroughTraffic.transactions,
              b.writeThroughTraffic.transactions);
    EXPECT_EQ(a.writeThroughTraffic.bytes, b.writeThroughTraffic.bytes);
    EXPECT_EQ(a.writeBackTraffic.transactions,
              b.writeBackTraffic.transactions);
    EXPECT_EQ(a.writeBackTraffic.bytes, b.writeBackTraffic.bytes);
    EXPECT_EQ(a.flushTraffic.transactions, b.flushTraffic.transactions);
    EXPECT_EQ(a.flushTraffic.bytes, b.flushTraffic.bytes);
}

BatchOutcome
runWith(const std::vector<Request>& requests, Engine engine)
{
    BatchOptions options;
    options.engine = engine;
    BatchOutcome outcome = runBatch(requests, options);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.results.size(), requests.size());
    return outcome;
}

/** One cell's wire JSON (raw counts), for byte-level comparison. */
std::string
resultJson(const RunResult& result)
{
    std::ostringstream os;
    stats::JsonWriter json(os);
    json.beginObject();
    service::writeRunResult(json, "result", result);
    json.endObject();
    return os.str();
}

TEST(EngineDifferential, Fig13To16GridIsByteIdentical)
{
    for (const trace::Trace& t : traces()) {
        std::vector<Request> requests = fig13to16Grid(t);
        BatchOutcome percell = runWith(requests, Engine::PerCell);
        BatchOutcome onepass = runWith(requests, Engine::OnePass);
        for (std::size_t i = 0; i < requests.size(); ++i) {
            SCOPED_TRACE(t.name() + " cell " + std::to_string(i));
            expectIdentical(percell.results[i], onepass.results[i]);
            EXPECT_EQ(resultJson(percell.results[i]),
                      resultJson(onepass.results[i]));
        }
    }
}

TEST(EngineDifferential, WriteBackWithFlushIsIdentical)
{
    const trace::Trace& t = traces().front();
    std::vector<Request> requests;
    for (Count size : standardCacheSizes())
        requests.push_back(
            {&t, config(size, 16, WriteHitPolicy::WriteBack,
                        WriteMissPolicy::FetchOnWrite),
             true});
    BatchOutcome percell = runWith(requests, Engine::PerCell);
    BatchOutcome onepass = runWith(requests, Engine::OnePass);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(percell.results[i], onepass.results[i]);
        EXPECT_GT(onepass.results[i].cache.flushedValidLines, 0u);
    }
}

TEST(EngineDifferential, GenericLaneConfigsAreIdentical)
{
    const trace::Trace& t = traces().front();
    CacheConfig assoc2 = config(8 * 1024, 16,
                                WriteHitPolicy::WriteBack,
                                WriteMissPolicy::FetchOnWrite);
    assoc2.assoc = 2;
    CacheConfig coarse = config(8 * 1024, 16,
                                WriteHitPolicy::WriteThrough,
                                WriteMissPolicy::WriteValidate);
    coarse.validGranularity = 4;
    ASSERT_FALSE(fastLaneEligible(assoc2));
    ASSERT_FALSE(fastLaneEligible(coarse));

    std::vector<Request> requests = {{&t, assoc2, true},
                                     {&t, coarse, false}};
    BatchOutcome percell = runWith(requests, Engine::PerCell);
    BatchOutcome onepass = runWith(requests, Engine::OnePass);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(percell.results[i], onepass.results[i]);
    }
}

TEST(EngineDifferential, EmptyTraceIsIdentical)
{
    trace::Trace empty("empty");
    Request request{&empty,
                    config(8 * 1024, 16, WriteHitPolicy::WriteBack,
                           WriteMissPolicy::FetchOnWrite),
                    true};
    RunResult percell = runOne(request, Engine::PerCell);
    RunResult onepass = runOne(request, Engine::OnePass);
    expectIdentical(percell, onepass);
    EXPECT_EQ(onepass.instructions, 0u);
    EXPECT_EQ(onepass.cache.accesses(), 0u);
}

TEST(EngineDifferential, ImportedTracesAreByteIdentical)
{
    // A trace round-tripped through either interchange encoding of
    // docs/TRACE_FORMAT.md replays to the same counters as the
    // original, on both engines, down to the wire JSON.
    const trace::Trace& original = traces().front();
    std::stringstream text, binary;
    trace::exportTraceText(original, text);
    trace::exportTraceBinary(original, binary);
    trace::Trace from_text =
        trace::importTraceText(text, original.name());
    trace::Trace from_binary =
        trace::importTraceBinary(binary, original.name());
    ASSERT_EQ(from_text, original);
    ASSERT_EQ(from_binary, original);

    CacheConfig base = config(8 * 1024, 16, WriteHitPolicy::WriteBack,
                              WriteMissPolicy::FetchOnWrite);
    RunResult reference =
        runOne({&original, base, true}, Engine::PerCell);
    for (const trace::Trace* t : {&from_text, &from_binary}) {
        Request request{t, base, true};
        RunResult percell = runOne(request, Engine::PerCell);
        RunResult onepass = runOne(request, Engine::OnePass);
        expectIdentical(percell, onepass);
        expectIdentical(percell, reference);
        EXPECT_EQ(resultJson(onepass), resultJson(reference));
    }
}

TEST(EngineDifferential, RunOneMatchesBatch)
{
    const trace::Trace& t = traces().front();
    Request request{&t,
                    config(16 * 1024, 32, WriteHitPolicy::WriteBack,
                           WriteMissPolicy::FetchOnWrite),
                    false};
    RunResult one = runOne(request, Engine::OnePass);
    BatchOutcome batch = runWith({request}, Engine::OnePass);
    expectIdentical(one, batch.results.front());
}

TEST(EngineDifferential, RenderedTablesAreByteIdentical)
{
    const trace::Trace& t = traces().front();
    CacheConfig base = config(8 * 1024, 16, WriteHitPolicy::WriteBack,
                              WriteMissPolicy::FetchOnWrite);

    // The jcache-sweep table for the size axis, both engines.
    AxisPoints points = buildAxisPoints("size", base);
    std::vector<Request> requests;
    for (const CacheConfig& c : points.configs)
        requests.push_back({&t, c, false});
    BatchOutcome percell = runWith(requests, Engine::PerCell);
    BatchOutcome onepass = runWith(requests, Engine::OnePass);
    for (const char* metric : {"miss", "traffic", "dirty"}) {
        std::ostringstream a;
        std::ostringstream b;
        service::renderSweepTable(a, "size", metric, t.name(), base,
                                  points.labels, percell.results);
        service::renderSweepTable(b, "size", metric, t.name(), base,
                                  points.labels, onepass.results);
        EXPECT_EQ(a.str(), b.str()) << metric;
    }

    // The jcache-sim statistics block for one cell, both engines.
    Request cell{&t, base, true};
    std::ostringstream a;
    std::ostringstream b;
    service::renderRunTable(a, runOne(cell, Engine::PerCell),
                            t.name(), true);
    service::renderRunTable(b, runOne(cell, Engine::OnePass),
                            t.name(), true);
    EXPECT_EQ(a.str(), b.str());
}

TEST(EngineDifferential, StoreRoundTripIsByteIdentical)
{
    // The persistence property behind incremental sweeps: a result
    // that went result -> wire JSON -> disk blob -> wire JSON ->
    // result must re-serialize and re-render byte-identically to the
    // fresh simulation, so a table assembled from store hits cannot
    // be told apart from one simulated from scratch.
    namespace fs = std::filesystem;
    std::string dir =
        (fs::temp_directory_path() /
         ("jcache_store_differential_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    store::StoreConfig store_config;
    store_config.dir = dir;
    store::ResultStore store(store_config);

    const trace::Trace& t = traces().front();
    std::vector<Request> requests = fig13to16Grid(t);
    requests.resize(8); // one policy row is plenty for a round trip
    BatchOutcome fresh = runWith(requests, Engine::OnePass);

    std::vector<RunResult> replayed;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        std::string key = "000000000000000" + std::to_string(i);
        store.put(key, resultJson(fresh.results[i]));
        auto blob = store.get(key);
        ASSERT_TRUE(blob.has_value());
        EXPECT_EQ(*blob, resultJson(fresh.results[i]));

        std::string error;
        service::JsonValue v = service::JsonValue::parse(*blob,
                                                         &error);
        ASSERT_EQ(error, "");
        RunResult parsed = service::parseRunResult(v.get("result"));
        expectIdentical(fresh.results[i], parsed);
        EXPECT_EQ(resultJson(parsed), resultJson(fresh.results[i]));
        replayed.push_back(parsed);
    }

    // The rendered run table — derived metrics included — is
    // identical whether the counts came from memory or from disk.
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        std::ostringstream a;
        std::ostringstream b;
        service::renderRunTable(a, fresh.results[i], t.name(), false);
        service::renderRunTable(b, replayed[i], t.name(), false);
        EXPECT_EQ(a.str(), b.str());
    }
    fs::remove_all(dir);
}

TEST(EngineDifferential, ForcedScalarIsByteIdentical)
{
    // The AVX2 replay tiles must be invisible in the counters: the
    // same grid replayed with the vector path disabled renders the
    // same wire JSON for every cell.  (On machines without AVX2 both
    // passes take the scalar path and the test is a tautology — the
    // CI x86-64 runners are the real audience.)
    const trace::Trace& t = traces().front();
    std::vector<Request> requests = fig13to16Grid(t);
    BatchOutcome vectored = runWith(requests, Engine::OnePass);
    simd::forceScalar(true);
    BatchOutcome scalar = runWith(requests, Engine::OnePass);
    simd::forceScalar(false);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(vectored.results[i], scalar.results[i]);
        EXPECT_EQ(resultJson(vectored.results[i]),
                  resultJson(scalar.results[i]));
    }
}

TEST(EngineDifferential, MappedReplaySourceIsByteIdentical)
{
    // Replaying from the mmap'd JCRC cache must equal replaying the
    // in-memory trace, across both engines' comparison baseline.
    namespace fs = std::filesystem;
    std::string dir =
        (fs::temp_directory_path() /
         ("jcache_replay_differential_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);

    const trace::Trace& t = traces().front();
    trace::MappedReplayCache mapped(trace::ensureReplayCache(t, dir));
    EXPECT_EQ(mapped.digest(), trace::contentDigest(t));

    std::vector<Request> memory = fig13to16Grid(t);
    std::vector<Request> via_cache = memory;
    for (Request& r : via_cache)
        r.source = &mapped;
    BatchOutcome percell = runWith(memory, Engine::PerCell);
    BatchOutcome from_memory = runWith(memory, Engine::OnePass);
    BatchOutcome from_cache = runWith(via_cache, Engine::OnePass);
    for (std::size_t i = 0; i < memory.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(percell.results[i], from_cache.results[i]);
        EXPECT_EQ(resultJson(from_memory.results[i]),
                  resultJson(from_cache.results[i]));
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace jcache::sim
