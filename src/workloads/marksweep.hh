/**
 * @file
 * marksweep: bursty mark-sweep allocator stress (production workload).
 *
 * A mutator allocates fixed-size objects into a cell heap, links them
 * into small trees hanging off a root table, and mutates payloads
 * along random walks.  When the free list runs dry, a mark-sweep
 * collection runs: marking is a pointer-chasing read phase with
 * scattered mark-word writes, and sweeping is a sequential pass over
 * the entire heap that rewrites every dead cell's free-list link — a
 * massive streaming write burst.  The trace therefore alternates
 * between scattered small writes (mutator) and dense sequential write
 * storms (sweep), the allocator behavior that write-validate and
 * write-around were invented for and that no Table 1 program shows.
 */

#ifndef JCACHE_WORKLOADS_MARKSWEEP_HH
#define JCACHE_WORKLOADS_MARKSWEEP_HH

#include "workloads/workload.hh"

namespace jcache::workloads
{

/**
 * Mark-sweep collected cell heap under a mutating workload.
 */
class MarkSweepWorkload : public Workload
{
  public:
    /**
     * @param config standard knobs; scale multiplies the number of
     *               mutator operations.
     * @param cells  heap capacity in objects (32B each).
     * @param ops    base number of mutator operations per run.
     */
    explicit MarkSweepWorkload(const WorkloadConfig& config = {},
                               unsigned cells = 16384,
                               unsigned ops = 60000)
        : Workload(config), cells_(cells), ops_(ops)
    {}

    std::string name() const override { return "marksweep"; }
    std::string description() const override
    {
        return "allocator stress (bursty mark-sweep heap)";
    }

    void run(trace::TraceRecorder& recorder) const override;

  private:
    unsigned cells_;
    unsigned ops_;
};

} // namespace jcache::workloads

#endif // JCACHE_WORKLOADS_MARKSWEEP_HH
