/**
 * @file
 * Reproduces Figure 5: coalescing write buffer merge rate and
 * buffer-full stall CPI as a function of the write retirement
 * interval (8 entries of 16B, six-benchmark average), with the
 * 6-entry write cache merge rate as the reference line.
 */

#include <fstream>
#include <iostream>

#include "figure_printer.hh"
#include "sim/experiments.hh"

int
main(int argc, char** argv)
{
    using namespace jcache;

    const auto& traces = sim::TraceSet::standard();
    sim::FigureData fig = sim::figure5WriteBufferSweep(traces);
    bench::printFigure(fig, 2);

    std::cout <<
        "Paper reference: merging only becomes significant when "
        "entries linger, but then\nthe buffer is nearly always full "
        "and store stalls dominate (the paper's example:\n50% merging "
        "needs a 38-cycle retire interval at ~7 CPI of stalls).  A "
        "write cache\nmerges comparably with zero stalls.\n";

    std::string csv_path = bench::csvPathFromArgs(argc, argv);
    if (!csv_path.empty()) {
        std::ofstream ofs(csv_path);
        bench::writeFigureCsv(fig, ofs);
    }
    return 0;
}
