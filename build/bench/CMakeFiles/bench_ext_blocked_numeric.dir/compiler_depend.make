# Empty compiler generated dependencies file for bench_ext_blocked_numeric.
# This may be replaced when dependencies are built.
