/**
 * @file
 * Implementation of the TCP front end.
 */

#include "service/server.hh"

#include <chrono>
#include <sstream>

#include "net/frame.hh"
#include "stats/json.hh"

namespace jcache::service
{

namespace
{

/** Best-effort error frame for a transport-level violation. */
std::string
frameErrorResponse(net::FrameStatus status)
{
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("ok", false);
    json.field("code", "frame_" + net::name(status));
    json.field("error", "malformed frame (" + net::name(status) +
                            "); closing connection");
    json.endObject();
    return oss.str();
}

} // namespace

Server::Server(const ServerConfig& config)
    : config_(config), service_(config.service)
{
}

Server::~Server()
{
    requestStop();
    // Move the threads out before joining: a connection thread takes
    // threads_mutex_ to mark itself finished, so joining under the
    // lock would deadlock.
    std::list<std::pair<std::uint64_t, std::thread>> draining;
    {
        std::lock_guard<std::mutex> lock(threads_mutex_);
        draining.swap(threads_);
    }
    for (auto& [id, thread] : draining) {
        if (thread.joinable())
            thread.join();
    }
}

bool
Server::start(std::string* error)
{
    listener_ = net::Listener::listenOn(config_.port, error);
    return listener_.valid();
}

void
Server::reapFinished()
{
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (std::uint64_t id : finished_) {
        for (auto it = threads_.begin(); it != threads_.end(); ++it) {
            if (it->first == id) {
                it->second.join();
                threads_.erase(it);
                break;
            }
        }
    }
    finished_.clear();
}

void
Server::serve()
{
    while (!stop_.load()) {
        net::Socket client = listener_.accept(&stop_);
        if (!client.valid())
            continue;
        reapFinished();
        std::lock_guard<std::mutex> lock(threads_mutex_);
        std::uint64_t id = next_id_++;
        threads_.emplace_back(
            id, std::thread([this, id,
                             sock = std::move(client)]() mutable {
                handleConnection(std::move(sock), id);
            }));
    }
    listener_.close();
    // Drain: every accepted connection finishes its in-flight
    // request/response before the server returns.  Joining happens
    // outside threads_mutex_ — exiting connection threads take it.
    std::list<std::pair<std::uint64_t, std::thread>> draining;
    {
        std::lock_guard<std::mutex> lock(threads_mutex_);
        draining.swap(threads_);
    }
    for (auto& [id, thread] : draining) {
        if (thread.joinable())
            thread.join();
    }
}

void
Server::handleConnection(net::Socket socket, std::uint64_t id)
{
    // Read in short slices so an idle connection re-checks stop_
    // promptly; idle time accumulates toward the configured limit.
    // Writes keep the full timeout — a response to a slow reader is
    // not an idle condition.
    constexpr unsigned kSliceMillis = 250;
    socket.setReadTimeout(kSliceMillis);
    socket.setWriteTimeout(config_.connectionTimeoutMillis);
    unsigned idle_millis = 0;

    // Stopping must not drop a request the peer already sent: once
    // stop_ is observed, frames already buffered on this connection
    // are still read and answered, and the connection closes on the
    // first idle read or when the drain grace expires — whichever
    // comes first.  The grace bounds how long a peer that keeps
    // streaming can hold shutdown hostage.
    constexpr unsigned kDrainGraceMillis = 1000;
    using Clock = std::chrono::steady_clock;
    Clock::time_point drain_deadline{};

    std::string payload;
    for (;;) {
        if (stop_.load()) {
            if (drain_deadline == Clock::time_point{})
                drain_deadline =
                    Clock::now() +
                    std::chrono::milliseconds(kDrainGraceMillis);
            else if (Clock::now() >= drain_deadline)
                break;
        }
        net::FrameStatus status = net::readFrame(socket, payload);
        if (status == net::FrameStatus::Idle) {
            if (stop_.load())
                break;
            idle_millis += kSliceMillis;
            if (idle_millis >= config_.connectionTimeoutMillis)
                break;
            continue;
        }
        idle_millis = 0;
        if (status == net::FrameStatus::Closed)
            break;
        if (status != net::FrameStatus::Ok) {
            // Truncated/oversized/error: the stream can no longer be
            // trusted to be frame-aligned.  Tell the peer best-effort
            // and drop only this connection.
            service_.noteProtocolError();
            net::writeFrame(socket, frameErrorResponse(status));
            break;
        }
        std::string response = service_.handle(payload);
        if (net::writeFrame(socket, response) !=
            net::FrameStatus::Ok) {
            // Peer vanished mid-response; nothing else to do for it.
            break;
        }
        if (service_.shutdownRequested())
            requestStop();
    }
    socket.close();
    std::lock_guard<std::mutex> lock(threads_mutex_);
    finished_.push_back(id);
}

} // namespace jcache::service
