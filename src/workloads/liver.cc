/**
 * @file
 * Implementation of the Livermore loops workload.
 *
 * The kernels follow the classic Fortran forms (hydro fragment, ICCG,
 * inner product, banded equations, tri-diagonal elimination, linear
 * recurrence, equation of state, ADI, predictors, sums/differences,
 * particle-in-cell), each reading the shared input arrays and writing
 * a kernel-private output region.
 */

#include "workloads/liver.hh"

#include <random>

#include "workloads/traced_memory.hh"

namespace jcache::workloads
{

namespace
{

using Vec = TracedArray<double>;

} // namespace

void
LiverWorkload::run(trace::TraceRecorder& rec) const
{
    unsigned n = n_;
    TracedMemory mem(rec);

    // Shared inputs (the "original matrices" every pass re-reads).
    Vec y(mem, n + 16);
    Vec z(mem, n + 16);
    Vec u(mem, n + 16);
    Vec v(mem, n + 16);

    // Kernel-private outputs: one region per kernel so no kernel reads
    // another's results.
    constexpr unsigned kKernels = 14;
    std::vector<Vec> out;
    out.reserve(kKernels);
    for (unsigned k = 0; k < kKernels; ++k)
        out.emplace_back(mem, n + 16);

    std::mt19937_64 rng(config_.seed);
    std::uniform_real_distribution<double> dist(0.01, 1.0);

    // Initialize inputs once (loader-style writes, traced).
    for (unsigned i = 0; i < n + 16; ++i) {
        y.set(i, dist(rng));
        z.set(i, dist(rng));
        u.set(i, dist(rng));
        v.set(i, dist(rng));
        rec.tick(4);
    }

    const double q = 0.5, r = 0.25, t = 0.125;
    unsigned passes = 25 * config_.scale;

    for (unsigned pass = 0; pass < passes; ++pass) {
        // Kernel 1: hydro fragment.  z[k+10] is the previous
        // iteration's z[k+11]: a compiler keeps it in a register, so
        // only one new z element loads per iteration.
        {
            double z_lo = z.get(10);
            for (unsigned k = 0; k < n; ++k) {
                double z_hi = z.get(k + 11);
                double val = q + y.get(k) * (r * z_lo + t * z_hi);
                out[0].set(k, val);
                z_lo = z_hi;
                rec.tick(5);
            }
        }

        // Kernel 2: ICCG excerpt (incomplete Cholesky, halved spans).
        for (unsigned span = n / 2; span >= 1; span /= 2) {
            for (unsigned i = 0; i + span < n; i += 2 * span) {
                double val = u.get(i) - v.get(i) * u.get(i + span);
                out[1].set(i, val);
                rec.tick(5);
            }
            rec.tick(2);
            if (span == 1)
                break;
        }

        // Kernel 3: inner product.
        {
            double sum = 0.0;
            for (unsigned k = 0; k < n; ++k) {
                sum += z.get(k) * y.get(k);
                rec.tick(3);
            }
            out[2].set(0, sum);
        }

        // Kernel 4: banded linear equations.
        for (unsigned k = 6; k < n; k += 5) {
            double sum = 0.0;
            for (unsigned j = 0; j < 5; ++j) {
                sum += y.get(k - j - 1) * z.get(j);
                rec.tick(3);
            }
            out[3].set(k, y.get(k) - sum);
            rec.tick(2);
        }

        // Kernel 5: tri-diagonal elimination, below diagonal.  The
        // recurrence reads the kernel's own previous output — the one
        // intra-kernel read-after-write in the suite.
        out[4].set(0, z.get(0) * y.get(0));
        for (unsigned i = 1; i < n; ++i) {
            double val = z.get(i) * (y.get(i) - out[4].get(i - 1));
            out[4].set(i, val);
            rec.tick(4);
        }

        // Kernel 6: general linear recurrence (banded, width 4).
        for (unsigned i = 1; i < n; ++i) {
            double sum = 0.0;
            unsigned width = i < 4 ? i : 4;
            for (unsigned k = 1; k <= width; ++k) {
                sum += u.get(i - k) * v.get(k);
                rec.tick(3);
            }
            out[5].set(i, y.get(i) + sum);
            rec.tick(2);
        }

        // Kernel 7: equation of state fragment.  The u[k..k+6] window
        // slides by one per iteration; registers carry six of the
        // seven values, so only u[k+6] loads fresh.
        {
            double uw[7];
            for (unsigned j = 0; j < 6; ++j)
                uw[j] = u.get(j);
            for (unsigned k = 0; k < n; ++k) {
                uw[6] = u.get(k + 6);
                double val = uw[0] + r * (z.get(k) + r * y.get(k)) +
                    t * (uw[3] + r * (uw[2] + r * uw[1]) +
                         t * (uw[6] + q * (uw[5] + q * uw[4])));
                out[6].set(k, val);
                for (unsigned j = 0; j < 6; ++j)
                    uw[j] = uw[j + 1];
                rec.tick(12);
            }
        }

        // Kernel 8: ADI integration (two interleaved sweeps).
        for (unsigned k = 1; k + 1 < n; k += 2) {
            double a = y.get(k - 1) + r * z.get(k);
            double b = y.get(k + 1) - r * z.get(k);
            out[7].set(k - 1, a);
            out[7].set(k, b);
            rec.tick(6);
        }

        // Kernel 9: integrate predictors.  Same sliding-window
        // register reuse as kernel 7: one fresh u load per iteration.
        {
            double uw[6];
            for (unsigned j = 0; j < 5; ++j)
                uw[j] = u.get(j + 1);
            for (unsigned k = 0; k + 12 < n; ++k) {
                uw[5] = u.get(k + 6);
                double val = v.get(k) + q * (uw[0] + uw[1]) +
                    r * (uw[2] + uw[3]) + t * (uw[4] + uw[5]);
                out[8].set(k, val);
                for (unsigned j = 0; j < 5; ++j)
                    uw[j] = uw[j + 1];
                rec.tick(9);
            }
        }

        // Kernel 10: difference predictors.
        for (unsigned k = 0; k + 10 < n; ++k) {
            double ar = u.get(k);
            double br = ar - v.get(k);
            double cr = br - y.get(k);
            out[9].set(k, ar + br + cr);
            rec.tick(6);
        }

        // Kernel 11: first sum (prefix), reads own previous output.
        out[10].set(0, y.get(0));
        for (unsigned k = 1; k < n; ++k) {
            out[10].set(k, out[10].get(k - 1) + y.get(k));
            rec.tick(3);
        }

        // Kernel 12: first difference.
        for (unsigned k = 0; k < n; ++k) {
            out[11].set(k, y.get(k + 1) - y.get(k));
            rec.tick(3);
        }

        // Kernel 13: 2-D particle in cell (gather via index arrays).
        for (unsigned k = 0; k + 1 < n; k += 2) {
            auto i1 = static_cast<unsigned>(z.get(k) * (n - 8));
            double val = u.get(i1) + v.get(i1 + 1) + y.get(k);
            out[12].set(k, val);
            rec.tick(7);
        }

        // Kernel 14: 1-D particle in cell (scatter accumulate).
        for (unsigned k = 0; k + 1 < n; k += 2) {
            auto ix = static_cast<unsigned>(y.get(k) * (n - 4));
            out[13].update(ix, [&](double cur) {
                rec.tick(1);
                return cur + z.get(k);
            });
            rec.tick(5);
        }
    }
}

} // namespace jcache::workloads
