file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_02_write_hits.dir/bench_fig01_02_write_hits.cc.o"
  "CMakeFiles/bench_fig01_02_write_hits.dir/bench_fig01_02_write_hits.cc.o.d"
  "bench_fig01_02_write_hits"
  "bench_fig01_02_write_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_02_write_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
