/**
 * @file
 * Implementation of SecondLevelCache.
 */

#include "mem/second_level_cache.hh"

namespace jcache::mem
{

void
SecondLevelCache::fetchLine(Addr addr, unsigned bytes)
{
    // An L1 line fetch is a read of the whole line.  The L2's own line
    // size may be larger; DataCache handles the containment.
    cache_.read(addr, bytes);
}

void
SecondLevelCache::writeThrough(Addr addr, unsigned bytes)
{
    cache_.write(addr, bytes);
}

void
SecondLevelCache::writeBack(Addr addr, unsigned line_bytes,
                            unsigned dirty_bytes, bool is_flush)
{
    // A dirty victim arriving from above writes its line into the L2.
    // The byte-exact dirty mask is not transmitted across the
    // interface (real write-back buses move the subblocks); writing
    // the full line is the whole-line write-back the paper's
    // transaction counts assume.
    (void)dirty_bytes;
    (void)is_flush;
    cache_.write(addr, line_bytes);
}

} // namespace jcache::mem
