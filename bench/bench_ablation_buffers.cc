/**
 * @file
 * Ablations of the two write-through support structures:
 *
 *  1. write buffer depth (Smith [13] recommends 2-4 entries): merge
 *     rate and stall CPI for 1-16 entries at a fixed retire interval;
 *  2. write cache entry width: the paper picks 8B entries "since no
 *     writes larger than 8B exist in most architectures" — 4B and 16B
 *     entries bracket that choice at equal total capacity.
 */

#include <iostream>

#include "core/write_buffer.hh"
#include "core/write_cache.hh"
#include "stats/counter.hh"
#include "stats/table.hh"
#include "sim/sweeps.hh"

namespace
{

using namespace jcache;

void
writeBufferDepthAblation(const sim::TraceSet& traces)
{
    stats::TextTable table(
        "Ablation: write buffer depth (16B entries, retire interval "
        "6) — merge% / stall CPI, six-benchmark average");
    table.setHeader({"metric", "1", "2", "4", "8", "16"});

    std::vector<double> merge_row, stall_row;
    for (unsigned entries : {1u, 2u, 4u, 8u, 16u}) {
        double merge_sum = 0, stall_sum = 0;
        for (const trace::Trace& t : traces.traces()) {
            core::WriteBufferConfig config;
            config.entries = entries;
            config.entryBytes = 16;
            config.retireInterval = 6;
            core::CoalescingWriteBuffer buffer(config);
            Cycles now = 0;
            Count instructions = 0;
            for (const trace::TraceRecord& r : t) {
                now += r.instrDelta;
                instructions += r.instrDelta;
                if (r.type == trace::RefType::Write)
                    now += buffer.write(r.addr, now);
            }
            merge_sum += 100.0 * buffer.mergeFraction();
            stall_sum += stats::ratio(buffer.stallCycles(),
                                      instructions);
        }
        auto n = static_cast<double>(traces.size());
        merge_row.push_back(merge_sum / n);
        stall_row.push_back(stall_sum / n);
    }
    table.addRow("% writes merged", merge_row);
    std::vector<std::string> stall_cells{"stall CPI"};
    for (double v : stall_row)
        stall_cells.push_back(stats::formatFixed(v, 4));
    table.addRow(stall_cells);
    table.print(std::cout);
    std::cout << "\n";
}

void
writeCacheWidthAblation(const sim::TraceSet& traces)
{
    stats::TextTable table(
        "Ablation: write cache entry width at equal capacity (40B "
        "total) — % of writes removed");
    table.setHeader({"program", "10 x 4B", "5 x 8B", "2 x 16B",
                     "(5 x 8B is the paper's design)"});

    for (const trace::Trace& t : traces.traces()) {
        std::vector<std::string> row{t.name()};
        const std::pair<unsigned, unsigned> designs[] = {
            {10, 4}, {5, 8}, {2, 16}};
        for (auto [entries, width] : designs) {
            core::WriteCache wc(entries, width, nullptr);
            for (const trace::TraceRecord& r : t) {
                if (r.type != trace::RefType::Write)
                    continue;
                // 8B writes split across 4B entries as two stores.
                if (r.size > width) {
                    wc.writeThrough(r.addr, width);
                    wc.writeThrough(r.addr + width, r.size - width);
                } else {
                    wc.writeThrough(r.addr, r.size);
                }
            }
            row.push_back(stats::formatFixed(
                100.0 * wc.fractionRemoved(), 1));
        }
        row.push_back("");
        table.addRow(row);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    const auto& traces = jcache::sim::TraceSet::standard();
    writeBufferDepthAblation(traces);
    writeCacheWidthAblation(traces);
    std::cout <<
        "\nDepth: Smith's 2-4 entries capture most stall avoidance; "
        "merging barely moves.\nWidth: wider entries catch spatial "
        "pairs but waste associativity; 8B is the knee.\n";
    return 0;
}
