/**
 * @file
 * Unit tests for the dirty victim buffer (paper Section 3's
 * single-register claim).
 */

#include <gtest/gtest.h>

#include "core/victim_buffer.hh"
#include "util/logging.hh"

namespace jcache::core
{
namespace
{

TEST(VictimBuffer, RejectsZeroEntries)
{
    EXPECT_THROW(DirtyVictimBuffer(0, 10), FatalError);
}

TEST(VictimBuffer, SingleVictimNeverStalls)
{
    DirtyVictimBuffer buffer(1, 10);
    EXPECT_EQ(buffer.insert(0x100, 0), 0u);
    EXPECT_EQ(buffer.occupancy(0), 1u);
    EXPECT_EQ(buffer.occupancy(10), 0u);  // drained
    EXPECT_EQ(buffer.conflicts(), 0u);
}

TEST(VictimBuffer, SpacedVictimsNeverConflict)
{
    DirtyVictimBuffer buffer(1, 10);
    for (Cycles t = 0; t < 200; t += 20)
        EXPECT_EQ(buffer.insert(0x100 + t, t), 0u);
    EXPECT_EQ(buffer.conflicts(), 0u);
    EXPECT_EQ(buffer.insertions(), 10u);
}

TEST(VictimBuffer, BackToBackVictimsStallOnSingleEntry)
{
    DirtyVictimBuffer buffer(1, 10);
    buffer.insert(0x100, 0);          // drains at 10
    Cycles stall = buffer.insert(0x200, 2);
    EXPECT_EQ(stall, 8u);             // waits for the first to drain
    EXPECT_EQ(buffer.conflicts(), 1u);
    EXPECT_EQ(buffer.stallCycles(), 8u);
}

TEST(VictimBuffer, TwoEntriesAbsorbAPair)
{
    DirtyVictimBuffer buffer(2, 10);
    EXPECT_EQ(buffer.insert(0x100, 0), 0u);
    EXPECT_EQ(buffer.insert(0x200, 1), 0u);
    EXPECT_EQ(buffer.conflicts(), 0u);
    // Serial drain port: second victim finishes at 20, not 11.
    EXPECT_EQ(buffer.occupancy(15), 1u);
    EXPECT_EQ(buffer.occupancy(20), 0u);
}

TEST(VictimBuffer, TripleBurstConflictsOnceWithTwoEntries)
{
    DirtyVictimBuffer buffer(2, 10);
    buffer.insert(0x100, 0);
    buffer.insert(0x200, 1);
    Cycles stall = buffer.insert(0x300, 2);
    EXPECT_EQ(stall, 8u);  // first drains at 10
    EXPECT_EQ(buffer.conflicts(), 1u);
}

TEST(VictimBuffer, ResetClearsState)
{
    DirtyVictimBuffer buffer(1, 10);
    buffer.insert(0x100, 0);
    buffer.insert(0x200, 1);
    buffer.reset();
    EXPECT_EQ(buffer.insertions(), 0u);
    EXPECT_EQ(buffer.conflicts(), 0u);
    EXPECT_EQ(buffer.occupancy(0), 0u);
    EXPECT_EQ(buffer.insert(0x300, 0), 0u);
}

TEST(VictimBuffer, PaperClaimSingleEntrySufficesWhenMissesAreSpread)
{
    // Misses with dirty victims every ~25 cycles, drain of 12: one
    // entry never conflicts — matching the paper's argument that a
    // single dirty victim register usually suffices.
    DirtyVictimBuffer buffer(1, 12);
    std::uint64_t x = 3;
    Cycles now = 0;
    for (int i = 0; i < 1000; ++i) {
        x = x * 6364136223846793005ull + 1;
        now += 20 + (x % 12);
        buffer.insert(x, now);
    }
    EXPECT_EQ(buffer.conflicts(), 0u);
}

} // namespace
} // namespace jcache::core
