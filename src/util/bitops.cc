/**
 * @file
 * Compile-time checks for the bitops helpers.  All functions are
 * constexpr and defined in the header; this translation unit pins the
 * key identities so a regression fails the build rather than a test.
 */

#include "util/bitops.hh"

namespace jcache
{

static_assert(isPowerOfTwo(1) && isPowerOfTwo(4096));
static_assert(!isPowerOfTwo(0) && !isPowerOfTwo(12));
static_assert(floorLog2(1) == 0 && floorLog2(16) == 4 &&
              floorLog2(17) == 4);
static_assert(ceilLog2(16) == 4 && ceilLog2(17) == 5);
static_assert(alignDown(0x1234, 16) == 0x1230);
static_assert(alignUp(0x1231, 16) == 0x1240);
static_assert(maskBits(0) == 0 && maskBits(8) == 0xff &&
              maskBits(64) == ~std::uint64_t{0});
static_assert(byteMaskFor(4, 4) == 0xf0);
static_assert(popcount(0xf0) == 4);

} // namespace jcache
