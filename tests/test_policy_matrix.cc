/**
 * @file
 * Parameterized semantic invariants across the full legal policy
 * matrix — states that must hold for any (hit, miss) combination on
 * any reference, checked on structured micro-streams.
 */

#include <gtest/gtest.h>

#include "core/data_cache.hh"
#include "mem/traffic_meter.hh"

namespace jcache::core
{
namespace
{

using Combo = std::pair<WriteHitPolicy, WriteMissPolicy>;

const Combo kLegalCombos[] = {
    {WriteHitPolicy::WriteThrough, WriteMissPolicy::FetchOnWrite},
    {WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteValidate},
    {WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteAround},
    {WriteHitPolicy::WriteThrough, WriteMissPolicy::WriteInvalidate},
    {WriteHitPolicy::WriteBack, WriteMissPolicy::FetchOnWrite},
    {WriteHitPolicy::WriteBack, WriteMissPolicy::WriteValidate},
};

class PolicyMatrix : public ::testing::TestWithParam<Combo>
{
  protected:
    CacheConfig
    config() const
    {
        CacheConfig c;
        c.sizeBytes = 1024;
        c.lineBytes = 16;
        c.hitPolicy = GetParam().first;
        c.missPolicy = GetParam().second;
        return c;
    }

    bool isWriteBack() const
    {
        return GetParam().first == WriteHitPolicy::WriteBack;
    }
};

TEST_P(PolicyMatrix, ConfigIsLegal)
{
    EXPECT_NO_THROW(config().validate());
}

TEST_P(PolicyMatrix, ReadAfterWriteToSameAddressHits)
{
    // Whatever the policies, a read of just-written data never goes
    // to memory for *stale* data; at worst it refetches the line
    // (write-around / write-invalidate).  If the line is present and
    // the bytes valid, it must hit.
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    cache.write(0x104, 4);
    if (cache.contains(0x104) &&
        (cache.validMask(0x104) & byteMaskFor(4, 4)) ==
            byteMaskFor(4, 4)) {
        Count hits_before = cache.stats().readHits;
        cache.read(0x104, 4);
        EXPECT_EQ(cache.stats().readHits, hits_before + 1);
    }
}

TEST_P(PolicyMatrix, WriteThroughTrafficIffWriteThroughPolicy)
{
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    cache.write(0x104, 4);   // miss
    cache.write(0x104, 4);   // hit if allocated
    if (isWriteBack())
        EXPECT_EQ(meter.writeThroughs().transactions, 0u);
    else
        EXPECT_EQ(meter.writeThroughs().transactions, 2u);
}

TEST_P(PolicyMatrix, DirtyBitsOnlyInWriteBack)
{
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    cache.write(0x104, 4);
    cache.read(0x200, 4);
    cache.write(0x204, 4);
    if (!isWriteBack()) {
        EXPECT_EQ(cache.dirtyLineCount(), 0u);
        cache.flush();
        EXPECT_EQ(meter.flushBacks().transactions, 0u);
    }
}

TEST_P(PolicyMatrix, ValidMaskAlwaysContainsDirtyMask)
{
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    std::uint64_t x = 42;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1;
        Addr addr = ((x >> 16) % 4096) & ~Addr{3};
        if (x & 1)
            cache.write(addr, 4);
        else
            cache.read(addr, 4);
        ByteMask valid = cache.validMask(addr);
        ByteMask dirty = cache.dirtyMask(addr);
        ASSERT_EQ(dirty & ~valid, 0u)
            << "dirty bytes outside valid bytes";
    }
}

TEST_P(PolicyMatrix, EveryWriteIsHitOrMiss)
{
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    std::uint64_t x = 7;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1;
        cache.write(((x >> 16) % 8192) & ~Addr{3}, 4);
    }
    const CacheStats& s = cache.stats();
    EXPECT_EQ(s.writeHits + s.writeMisses, s.writes);
    EXPECT_LE(s.writeMissFetches, s.writeMisses);
}

TEST_P(PolicyMatrix, FetchBytesMatchFetchCount)
{
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    std::uint64_t x = 99;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1;
        Addr addr = ((x >> 16) % 8192) & ~Addr{7};
        if (x & 2)
            cache.write(addr, 8);
        else
            cache.read(addr, 8);
    }
    EXPECT_EQ(meter.fetches().transactions,
              cache.stats().linesFetched);
    EXPECT_EQ(meter.fetches().bytes,
              cache.stats().linesFetched * 16);
}

TEST_P(PolicyMatrix, ResetRestoresVirginState)
{
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    cache.write(0x104, 4);
    cache.read(0x208, 4);
    CacheStats before_first = cache.stats();
    cache.reset();
    meter.reset();
    cache.write(0x104, 4);
    cache.read(0x208, 4);
    EXPECT_EQ(cache.stats().readMisses, before_first.readMisses);
    EXPECT_EQ(cache.stats().writeMisses, before_first.writeMisses);
    EXPECT_EQ(cache.stats().linesFetched, before_first.linesFetched);
}

TEST_P(PolicyMatrix, AllocateLineAlwaysValidatesFully)
{
    mem::TrafficMeter meter;
    DataCache cache(config(), meter);
    cache.allocateLine(0x140);
    EXPECT_EQ(cache.validMask(0x140), maskBits(16));
    EXPECT_EQ(meter.fetches().transactions, 0u);
    if (isWriteBack())
        EXPECT_EQ(cache.dirtyMask(0x140), maskBits(16));
    else
        EXPECT_EQ(cache.dirtyMask(0x140), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllLegalCombos, PolicyMatrix, ::testing::ValuesIn(kLegalCombos),
    [](const auto& info) {
        std::string hit = info.param.first == WriteHitPolicy::WriteBack
            ? "wb" : "wt";
        switch (info.param.second) {
          case WriteMissPolicy::FetchOnWrite:
            return hit + "_fetch_on_write";
          case WriteMissPolicy::WriteValidate:
            return hit + "_write_validate";
          case WriteMissPolicy::WriteAround:
            return hit + "_write_around";
          case WriteMissPolicy::WriteInvalidate:
            return hit + "_write_invalidate";
        }
        return hit + "_unknown";
    });

} // namespace
} // namespace jcache::core
