/**
 * @file
 * jcache-sweep: sweep one axis of a cache configuration over a trace
 * and print a metric matrix — the interactive counterpart of the
 * figure benches.
 *
 * Usage:
 *   jcache-sweep <trace.jct | workload> --axis size|line|assoc
 *       [--metric miss|traffic|dirty]
 *       [--hit wt|wb] [--miss fow|wv|wa|wi]
 *       [--jobs N] [--progress] [--json [path]]
 *       [--engine percell|onepass]
 *       [--trace-out <events.json>]
 *       [--checkpoint <file> [--checkpoint-every N] [--resume]]
 *       [--store-dir <dir> [--store-cap-bytes N] [--incremental]]
 *       [--trace-cache-dir <dir>] [--version]
 *
 * Metrics:
 *   miss    — counted-miss ratio (%)
 *   traffic — back-side transactions per instruction
 *   dirty   — percent of writes to already-dirty lines
 *
 * The sweep runs through the unified engine API (sim::runBatch).
 * Under the default one-pass engine the whole axis shares a single
 * decode of the trace; --engine percell restores the classic
 * one-replay-per-point path.  Either way results are ordered by
 * sweep point, never by completion, so the table is identical at any
 * job count and for both engines — and the axis expansion and table
 * rendering are shared with jcache-client, so a service-served sweep
 * is byte-identical too.  --progress reports per-point completion
 * and a run summary on stderr; --json exports the SweepReport
 * (per-job wall time, throughput, utilization) for observability
 * tooling.
 *
 * --trace-out captures spans (trace generation, the sweep grid, every
 * grid cell or trace pass, rendering) and writes them as Chrome
 * trace-event JSON, loadable in chrome://tracing or ui.perfetto.dev.
 *
 * --checkpoint makes the sweep crash-safe: every N completed points
 * (default 1) the finished cells are atomically persisted, and
 * --resume replays only the cells the checkpoint is missing.  A
 * resumed sweep prints a table byte-identical to an uninterrupted
 * one; resuming against a checkpoint from a different sweep (other
 * trace, axis or base config) is refused.
 *
 * --trace-cache-dir keeps a compact delta-encoded replay cache of
 * the trace (docs/ENGINE.md): the first sweep writes
 * `<digest>.jcrc` once, and every later sweep over the same trace
 * content mmaps it and replays the blocks zero-copy instead of
 * re-decoding records from memory.  Counters are byte-identical
 * with and without the cache; the per-cell engine ignores it.
 *
 * --store-dir publishes every computed cell into the persistent
 * result store (docs/STORAGE.md), keyed exactly like the daemon's
 * cells; --incremental additionally reads the store first and
 * simulates only the missing cells, reporting `store: reused R
 * cells, simulated S cells` on stderr.  A sweep over a fully
 * populated store simulates nothing and prints a table
 * byte-identical to a cold one.  The store and checkpoint paths are
 * mutually exclusive — a checkpoint belongs to one sweep, the store
 * is shared by all of them.
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>

#include "cli_common.hh"
#include "service/checkpoint.hh"
#include "service/json_value.hh"
#include "service/render.hh"
#include "sim/engine.hh"
#include "sim/sweeps.hh"
#include "stats/json.hh"
#include "store/key.hh"
#include "store/store.hh"
#include "telemetry/trace_writer.hh"
#include "trace/import.hh"
#include "trace/replay_cache.hh"
#include "trace/trace.hh"
#include "util/logging.hh"
#include "util/version.hh"
#include "workloads/workload.hh"

namespace
{

using namespace jcache;

constexpr unsigned kCommonFlags = tools::kFlagJobs |
                                  tools::kFlagProgress |
                                  tools::kFlagJson | tools::kFlagEngine;

int
usage()
{
    std::cerr <<
        "usage: jcache-sweep <trace.jct | workload> --axis "
        "size|line|assoc\n"
        "  [--metric miss|traffic|dirty] [--hit wt|wb] "
        "[--miss fow|wv|wa|wi]\n"
        "  " << tools::commonUsage(kCommonFlags) << "\n"
        "  [--trace-out <events.json>]\n"
        "  [--checkpoint <file> [--checkpoint-every N] [--resume]]\n"
        "  [--store-dir <dir> [--store-cap-bytes N] "
        "[--incremental]]\n"
        "  [--trace-cache-dir <dir>] [--version]\n";
    return 2;
}

/** The store blob of one sweep cell: `{"result": {...}}`. */
std::string
cellPayload(const sim::RunResult& result)
{
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    service::writeRunResult(json, "result", result);
    json.endObject();
    return oss.str();
}

/**
 * Decode a stored cell blob back into a RunResult; nullopt when the
 * payload does not parse (the cell is then simulated afresh — a
 * stale or foreign blob can cost work, never correctness).
 */
std::optional<sim::RunResult>
parseCellPayload(const std::string& payload)
{
    std::string error;
    service::JsonValue doc =
        service::JsonValue::parse(payload, &error);
    if (!error.empty() || !doc.isObject() || !doc.has("result"))
        return std::nullopt;
    try {
        return service::parseRunResult(doc.get("result"));
    } catch (const FatalError&) {
        return std::nullopt;
    }
}

/** Print per-cell failures; returns true when any cell failed. */
bool
reportFailures(const sim::SweepReport& report)
{
    for (const sim::JobFailure& f : report.failures)
        std::cerr << "error: sweep point " << f.index
                  << " failed: " << f.message << "\n";
    return !report.allSucceeded();
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc >= 2 && std::string(argv[1]) == "--version") {
        std::cout << versionLine("jcache-sweep") << "\n";
        return 0;
    }
    if (argc < 2)
        return usage();

    std::string axis = "size";
    std::string metric = "miss";
    std::string trace_out;
    std::string checkpoint_path;
    unsigned checkpoint_every = 1;
    bool resume = false;
    std::string store_dir;
    std::uint64_t store_cap_bytes = 256ull << 20;
    bool incremental = false;
    std::string trace_cache_dir;
    tools::CommonFlags common;
    core::CacheConfig base;
    base.hitPolicy = core::WriteHitPolicy::WriteBack;

    try {
        for (int i = 2; i < argc; ++i) {
            if (tools::parseCommonFlag(argc, argv, i, kCommonFlags,
                                       common))
                continue;
            std::string flag = argv[i];
            if (flag == "--resume") {
                resume = true;
                continue;
            }
            if (flag == "--incremental") {
                incremental = true;
                continue;
            }
            if (i + 1 >= argc)
                return usage();
            std::string value = argv[++i];
            if (flag == "--axis") {
                axis = value;
            } else if (flag == "--metric") {
                metric = value;
            } else if (flag == "--trace-out") {
                trace_out = value;
            } else if (flag == "--checkpoint") {
                checkpoint_path = value;
            } else if (flag == "--checkpoint-every") {
                checkpoint_every = static_cast<unsigned>(
                    std::strtoul(value.c_str(), nullptr, 10));
                if (checkpoint_every == 0)
                    checkpoint_every = 1;
            } else if (flag == "--store-dir") {
                store_dir = value;
            } else if (flag == "--trace-cache-dir") {
                trace_cache_dir = value;
            } else if (flag == "--store-cap-bytes") {
                store_cap_bytes =
                    std::strtoull(value.c_str(), nullptr, 10);
            } else if (flag == "--hit") {
                auto policy = core::parseHitPolicy(value);
                if (!policy)
                    return usage();
                base.hitPolicy = *policy;
            } else if (flag == "--miss") {
                auto policy = core::parseMissPolicy(value);
                if (!policy)
                    return usage();
                base.missPolicy = *policy;
            } else {
                return usage();
            }
        }

        if (!service::isSweepMetric(metric))
            return usage();
        if (resume && checkpoint_path.empty()) {
            std::cerr << "error: --resume requires --checkpoint\n";
            return usage();
        }
        if (incremental && store_dir.empty()) {
            std::cerr << "error: --incremental requires "
                         "--store-dir\n";
            return usage();
        }
        if (!store_dir.empty() && !checkpoint_path.empty()) {
            std::cerr << "error: --store-dir and --checkpoint are "
                         "mutually exclusive\n";
            return usage();
        }

        if (!trace_out.empty())
            telemetry::SpanTracer::instance().start();

        std::string source = argv[1];
        trace::Trace trace = [&] {
            telemetry::Span span("trace.generate", "sim");
            span.arg("source", source);
            return std::filesystem::exists(source)
                ? trace::loadAnyTrace(source)
                : workloads::generateTrace(
                      *workloads::makeWorkload(source));
        }();

        sim::AxisPoints points = sim::buildAxisPoints(axis, base);

        // With a replay-cache directory the one-pass engine replays
        // the mmap'd delta blocks instead of the in-memory records:
        // the cache is written once per trace content and mapped on
        // every later sweep.  The in-memory trace still rides along
        // for the per-cell engine and for rendering.
        std::unique_ptr<trace::MappedReplayCache> mapped;
        if (!trace_cache_dir.empty()) {
            telemetry::Span span("trace.replay_cache", "sim");
            std::string cache_path =
                trace::ensureReplayCache(trace, trace_cache_dir);
            mapped = std::make_unique<trace::MappedReplayCache>(
                cache_path);
            span.arg("digest", mapped->digest());
        }

        // One request per sweep point; results come back in point
        // order regardless of completion order or engine.
        std::vector<sim::Request> requests;
        for (const core::CacheConfig& config : points.configs)
            requests.push_back({&trace, config, false, mapped.get()});

        sim::ProgressFn on_progress;
        if (common.progress) {
            on_progress = [](std::size_t done, std::size_t total) {
                std::cerr << "\r[" << done << "/" << total
                          << "] points replayed" << std::flush;
                if (done == total)
                    std::cerr << "\n";
            };
        }
        sim::BatchOutcome outcome;

        if (!store_dir.empty()) {
            // Store-backed path: derive every cell's canonical key,
            // reuse what the store already holds (--incremental),
            // simulate the remainder in one batch (the one-pass
            // engine still shares a single decode across it), then
            // publish the fresh cells.
            store::StoreConfig store_config;
            store_config.dir = store_dir;
            store_config.capBytes = store_cap_bytes;
            store::ResultStore result_store(store_config);

            store::KeyContext ctx;
            ctx.engine = common.engine;
            std::string identity = trace::traceIdentity(trace);
            std::vector<std::string> keys;
            keys.reserve(points.configs.size());
            for (const core::CacheConfig& config : points.configs)
                keys.push_back(store::cellKey(
                    ctx, identity,
                    service::canonicalConfigKey(config), false));

            outcome.results.resize(requests.size());
            std::vector<std::size_t> todo;
            std::size_t reused = 0;
            for (std::size_t i = 0; i < requests.size(); ++i) {
                if (incremental) {
                    if (auto hit = result_store.get(keys[i])) {
                        if (auto cached = parseCellPayload(*hit)) {
                            outcome.results[i] = *cached;
                            ++reused;
                            continue;
                        }
                    }
                }
                todo.push_back(i);
            }

            if (!todo.empty()) {
                std::vector<sim::Request> subset;
                subset.reserve(todo.size());
                for (std::size_t index : todo)
                    subset.push_back(requests[index]);
                sim::BatchOptions options;
                options.engine = common.engine;
                options.jobs = common.jobs;
                options.progress = on_progress;
                sim::BatchOutcome fresh =
                    sim::runBatch(subset, options);
                for (std::size_t k = 0; k < todo.size(); ++k)
                    outcome.results[todo[k]] =
                        fresh.results[k];
                // Failure indices refer to the subset; report them
                // in sweep-point coordinates.
                for (sim::JobFailure& f : fresh.report.failures)
                    f.index = todo[f.index];
                outcome.report = std::move(fresh.report);
                if (outcome.report.allSucceeded()) {
                    for (std::size_t index : todo)
                        result_store.put(
                            keys[index],
                            cellPayload(outcome.results[index]));
                }
            }
            std::cerr << "store: reused " << reused
                      << " cells, simulated " << todo.size()
                      << " cells\n";
        } else if (checkpoint_path.empty()) {
            sim::BatchOptions options;
            options.engine = common.engine;
            options.jobs = common.jobs;
            options.progress = on_progress;
            outcome = sim::runBatch(requests, options);
        } else {
            // Crash-safe path: replay only the cells the checkpoint
            // is missing and persist every `checkpoint_every`
            // completions, plus once at the end so a finished sweep
            // leaves a complete checkpoint behind.
            service::SweepCheckpoint plan;
            plan.trace = trace.name();
            plan.axis = axis;
            plan.configKey = service::canonicalConfigKey(base);
            plan.cells = requests.size();

            service::SweepCheckpoint checkpoint = plan;
            if (resume &&
                std::filesystem::exists(checkpoint_path)) {
                checkpoint =
                    service::SweepCheckpoint::load(checkpoint_path);
                fatalIf(!checkpoint.sameSweep(plan),
                        "checkpoint " + checkpoint_path +
                            " belongs to a different sweep");
                if (common.progress) {
                    std::cerr << "resuming: "
                              << checkpoint.completed.size() << "/"
                              << checkpoint.cells
                              << " points already done\n";
                }
            }

            std::vector<std::size_t> todo =
                checkpoint.missingIndices();
            outcome.results.resize(requests.size());
            for (const auto& [index, result] : checkpoint.completed)
                outcome.results[index] = result;

            std::mutex checkpoint_mutex;
            std::size_t since_save = 0;
            sim::ParallelExecutor executor(common.jobs, on_progress);
            outcome.report = executor.runTasks(
                todo.size(), [&](std::size_t k) {
                    std::size_t index = todo[k];
                    outcome.results[index] =
                        sim::runOne(requests[index], common.engine);
                    std::lock_guard<std::mutex> lock(
                        checkpoint_mutex);
                    checkpoint.record(index,
                                      outcome.results[index]);
                    if (++since_save >= checkpoint_every) {
                        checkpoint.save(checkpoint_path);
                        since_save = 0;
                    }
                    return outcome.results[index].instructions;
                });
            if (outcome.report.allSucceeded())
                checkpoint.save(checkpoint_path);
        }

        if (reportFailures(outcome.report))
            return 1;
        {
            telemetry::Span render_span("render.sweep_table",
                                        "service");
            service::renderSweepTable(std::cout, axis, metric,
                                      trace.name(), base,
                                      points.labels,
                                      outcome.results);
        }

        if (common.progress)
            std::cerr << outcome.report.summary() << "\n";
        tools::writeJsonSink(common, [&](std::ostream& os) {
            outcome.report.writeJson(os);
        });
        if (!trace_out.empty()) {
            telemetry::SpanTracer& tracer =
                telemetry::SpanTracer::instance();
            tracer.stop();
            std::string error;
            fatalIf(!tracer.save(trace_out, &error), error);
            std::cerr << "wrote " << tracer.eventCount()
                      << " trace events to " << trace_out << "\n";
        }
        return 0;
    } catch (const FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
