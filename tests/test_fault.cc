/**
 * @file
 * Unit tests for the fault-injection registry (util/fault.hh):
 * trigger grammar, per-site determinism under a fixed seed, counters,
 * and the disabled fast path.
 */

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "util/fault.hh"
#include "util/logging.hh"

using namespace jcache;

namespace
{

class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::reset(); }
};

} // namespace

TEST_F(FaultTest, DisabledByDefault)
{
    fault::reset();
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(JCACHE_FAULT("nothing.armed"));
}

TEST_F(FaultTest, AlwaysFiresEveryCall)
{
    fault::configure("x.always=always");
    EXPECT_TRUE(fault::enabled());
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(JCACHE_FAULT("x.always"));
    fault::SiteStats s = fault::stats("x.always");
    EXPECT_EQ(s.calls, 5u);
    EXPECT_EQ(s.injected, 5u);
}

TEST_F(FaultTest, NthFiresExactlyOnce)
{
    fault::configure("x.nth=n3");
    int fired_at = -1;
    for (int i = 1; i <= 10; ++i) {
        if (JCACHE_FAULT("x.nth")) {
            EXPECT_EQ(fired_at, -1) << "fired twice";
            fired_at = i;
        }
    }
    EXPECT_EQ(fired_at, 3);
    EXPECT_EQ(fault::stats("x.nth").injected, 1u);
}

TEST_F(FaultTest, EveryNthFiresPeriodically)
{
    fault::configure("x.every=every4");
    int fired = 0;
    for (int i = 1; i <= 12; ++i) {
        bool fire = JCACHE_FAULT("x.every");
        EXPECT_EQ(fire, i % 4 == 0) << "call " << i;
        fired += fire ? 1 : 0;
    }
    EXPECT_EQ(fired, 3);
}

TEST_F(FaultTest, ProbabilityIsDeterministicPerSeed)
{
    auto sequence = [](std::uint64_t seed) {
        fault::configure("x.p=p0.3", seed);
        std::string bits;
        for (int i = 0; i < 64; ++i)
            bits += JCACHE_FAULT("x.p") ? '1' : '0';
        return bits;
    };
    std::string a = sequence(7);
    std::string b = sequence(7);
    std::string c = sequence(8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);  // different seed, different stream
    // A p=0.3 site over 64 calls fires a plausible number of times.
    auto ones = std::count(a.begin(), a.end(), '1');
    EXPECT_GT(ones, 5);
    EXPECT_LT(ones, 40);
}

TEST_F(FaultTest, SitesHaveIndependentStreams)
{
    fault::configure("a=p0.5;b=p0.5", 42);
    std::string a_bits, b_bits;
    for (int i = 0; i < 64; ++i) {
        a_bits += JCACHE_FAULT("a") ? '1' : '0';
        b_bits += JCACHE_FAULT("b") ? '1' : '0';
    }
    EXPECT_NE(a_bits, b_bits);
}

TEST_F(FaultTest, OffSiteNeverFiresButCounts)
{
    fault::configure("x.off=off;x.on=always");
    EXPECT_FALSE(JCACHE_FAULT("x.off"));
    EXPECT_EQ(fault::stats("x.off").calls, 1u);
    EXPECT_EQ(fault::stats("x.off").injected, 0u);
}

TEST_F(FaultTest, UnarmedSiteCountsCalls)
{
    fault::configure("other=always");
    EXPECT_FALSE(JCACHE_FAULT("x.unarmed"));
    EXPECT_EQ(fault::stats("x.unarmed").calls, 1u);
}

TEST_F(FaultTest, CommaAndSemicolonSeparatorsBothParse)
{
    fault::configure(" a=always , b=n2 ; c=p0.0 ");
    EXPECT_TRUE(JCACHE_FAULT("a"));
    EXPECT_FALSE(JCACHE_FAULT("b"));
    EXPECT_TRUE(JCACHE_FAULT("b"));
    EXPECT_FALSE(JCACHE_FAULT("c"));
}

TEST_F(FaultTest, MalformedSpecsThrow)
{
    EXPECT_THROW(fault::configure("noequals"), FatalError);
    EXPECT_THROW(fault::configure("=always"), FatalError);
    EXPECT_THROW(fault::configure("x="), FatalError);
    EXPECT_THROW(fault::configure("x=p1.5"), FatalError);
    EXPECT_THROW(fault::configure("x=p-0.1"), FatalError);
    EXPECT_THROW(fault::configure("x=n0"), FatalError);
    EXPECT_THROW(fault::configure("x=nzz"), FatalError);
    EXPECT_THROW(fault::configure("x=every0"), FatalError);
    EXPECT_THROW(fault::configure("x=bogus"), FatalError);
}

TEST_F(FaultTest, ReconfigureReplacesAndResetDisarms)
{
    fault::configure("a=always");
    EXPECT_TRUE(JCACHE_FAULT("a"));
    fault::configure("b=always");
    EXPECT_FALSE(JCACHE_FAULT("a"));  // a no longer armed
    EXPECT_TRUE(JCACHE_FAULT("b"));
    fault::reset();
    EXPECT_FALSE(fault::enabled());
    EXPECT_EQ(fault::stats("b").calls, 0u);
}

TEST_F(FaultTest, SummaryNamesArmedSites)
{
    fault::configure("x.sum=n2");
    JCACHE_FAULT("x.sum");
    JCACHE_FAULT("x.sum");
    std::string text = fault::summary();
    EXPECT_NE(text.find("x.sum: 1/2 (n2)"), std::string::npos) << text;
}

TEST_F(FaultTest, AllStatsListsEverySiteSeen)
{
    fault::configure("armed=always");
    JCACHE_FAULT("armed");
    JCACHE_FAULT("unarmed.site");
    auto all = fault::allStats();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].site, "armed");
    EXPECT_EQ(all[1].site, "unarmed.site");
}
