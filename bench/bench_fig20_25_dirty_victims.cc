/**
 * @file
 * Reproduces Figures 20-25: dirty-victim statistics of write-back
 * caches — percent of victims dirty, percent of bytes dirty within
 * dirty victims, and dirty bytes per victim — versus cache size (16B
 * lines, Figures 20-22) and line size (8KB, Figures 23-25), under
 * cold-stop and flush-stop accounting.
 */

#include <fstream>
#include <iostream>

#include "figure_printer.hh"
#include "sim/experiments.hh"

int
main(int argc, char** argv)
{
    using namespace jcache;

    bench::applyJobsFromArgs(argc, argv);
    const auto& traces = sim::TraceSet::standard();
    std::string csv_path = bench::csvPathFromArgs(argc, argv);
    std::ofstream csv;
    if (!csv_path.empty())
        csv.open(csv_path);

    auto show = [&](const sim::FigureData& f) {
        bench::printFigure(f);
        if (csv.is_open())
            bench::writeFigureCsv(f, csv);
    };

    show(sim::figure20VictimsDirtyVsCacheSize(traces, false));
    show(sim::figure20VictimsDirtyVsCacheSize(traces, true));
    show(sim::figure21BytesDirtyInDirtyVictimVsCacheSize(traces,
                                                         false));
    show(sim::figure21BytesDirtyInDirtyVictimVsCacheSize(traces,
                                                         true));
    show(sim::figure22BytesDirtyPerVictimVsCacheSize(traces));
    show(sim::figure23VictimsDirtyVsLineSize(traces, true));
    show(sim::figure24BytesDirtyInDirtyVictimVsLineSize(traces,
                                                        true));
    show(sim::figure25BytesDirtyPerVictimVsLineSize(traces));

    std::cout <<
        "Paper reference: ~50% of victims dirty on average (wide "
        "per-program spread);\nbytes dirty within a dirty 16B victim "
        "rise ~70->90% with cache size; with line\nsize the dirty "
        "fraction falls from 100% at 4B lines to ~40-65% at 32-64B "
        "—\nmotivating subblock dirty bits for long lines.\n";
    return 0;
}
