/**
 * @file
 * Reproduces Figures 1 and 2: the percentage of writes landing on
 * already-dirty lines in a write-back cache — i.e. the write traffic
 * a write-back cache removes relative to write-through.
 *
 * Figure 1: 8KB caches, line size 4B-64B.
 * Figure 2: 16B lines, cache size 1KB-128KB.
 */

#include <fstream>
#include <iostream>

#include "figure_printer.hh"
#include "sim/experiments.hh"

int
main(int argc, char** argv)
{
    using namespace jcache;

    const auto& traces = sim::TraceSet::standard();
    sim::FigureData fig1 =
        sim::figure1WritesToDirtyVsLineSize(traces);
    sim::FigureData fig2 =
        sim::figure2WritesToDirtyVsCacheSize(traces);

    bench::printFigure(fig1);
    bench::printFigure(fig2);

    std::cout <<
        "Paper reference: write-back removes the majority of writes "
        "on average;\ngrr/yacc/met reach >=80% at larger sizes while "
        "linpack/liver stay near the\n~50% two-doubles-per-16B-line "
        "spatial ceiling until the matrix fits (>=64KB).\n";

    std::string csv_path = bench::csvPathFromArgs(argc, argv);
    if (!csv_path.empty()) {
        std::ofstream ofs(csv_path);
        bench::writeFigureCsv(fig1, ofs);
        bench::writeFigureCsv(fig2, ofs);
    }
    return 0;
}
