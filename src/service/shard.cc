/**
 * @file
 * Implementation of the scatter/merge shard pool.
 */

#include "service/shard.hh"

#include <algorithm>
#include <sstream>

#include "net/frame.hh"
#include "service/json_value.hh"
#include "service/render.hh"
#include "stats/json.hh"
#include "telemetry/metrics.hh"
#include "util/version.hh"

namespace jcache::service
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Bump the armed-only per-worker scatter counter. */
void
countScatter(const std::string& worker_address)
{
    if (!telemetry::armed())
        return;
    telemetry::Registry::instance()
        .counter("jcache_shard_scatter_total",
                 "Chunks scattered to workers, by worker address",
                 {{"worker", worker_address}})
        .inc();
}

bool
parsePort(const std::string& text, std::uint16_t& port)
{
    if (text.empty() || text.size() > 5)
        return false;
    unsigned value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value == 0 || value > 65535)
        return false;
    port = static_cast<std::uint16_t>(value);
    return true;
}

} // namespace

std::vector<WorkerSpec>
parseWorkerList(const std::string& text)
{
    std::vector<WorkerSpec> workers;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        std::string entry = text.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!entry.empty()) {
            WorkerSpec spec;
            std::size_t colon = entry.rfind(':');
            std::string port_text;
            if (colon == std::string::npos) {
                // A bare port targets a local worker.
                spec.host = "127.0.0.1";
                port_text = entry;
            } else {
                spec.host = entry.substr(0, colon);
                port_text = entry.substr(colon + 1);
            }
            fatalIf(spec.host.empty() ||
                        !parsePort(port_text, spec.port),
                    "malformed worker '" + entry +
                        "' (expected host:port or port)");
            workers.push_back(std::move(spec));
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    fatalIf(workers.empty(), "worker list is empty");
    return workers;
}

ShardPool::ShardPool(const ShardConfig& config) : config_(config)
{
    fatalIf(config_.workers.empty(),
            "ShardPool needs at least one worker");
    fatalIf(config_.chunkCells == 0,
            "ShardPool chunkCells must be positive");
    for (const WorkerSpec& spec : config_.workers) {
        auto worker = std::make_unique<Worker>();
        worker->spec = spec;
        workers_.push_back(std::move(worker));
    }
    for (auto& worker : workers_) {
        Worker* w = worker.get();
        w->thread = std::thread([this, w] { workerLoop(*w); });
    }
}

ShardPool::~ShardPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto& worker : workers_) {
        if (worker->thread.joinable())
            worker->thread.join();
    }
}

std::vector<WorkerHealth>
ShardPool::health() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<WorkerHealth> out;
    out.reserve(workers_.size());
    for (const auto& worker : workers_) {
        WorkerHealth h;
        h.address = worker->spec.address();
        h.healthy = worker->healthy;
        h.consecutiveFailures = worker->consecutiveFailures;
        h.chunksCompleted = worker->chunksCompleted;
        h.chunksFailed = worker->chunksFailed;
        h.rescatters = worker->rescatters;
        out.push_back(std::move(h));
    }
    return out;
}

std::vector<sim::RunResult>
ShardPool::execute(const sim::TraceRef& ref, bool flush,
                   const std::vector<core::CacheConfig>& configs,
                   Clock::time_point deadline)
{
    fatalIf(configs.empty(), "scatter needs at least one cell");

    Scatter scatter;
    scatter.ref = ref;
    scatter.flush = flush;
    scatter.deadline = deadline;
    scatter.results.resize(configs.size());
    for (std::size_t i = 0; i < configs.size();
         i += config_.chunkCells) {
        Chunk chunk;
        chunk.firstCell = i;
        std::size_t end =
            std::min(configs.size(), i + config_.chunkCells);
        chunk.configs.assign(configs.begin() + i,
                             configs.begin() + end);
        scatter.pending.push_back(std::move(chunk));
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        fatalIf(scatter_ != nullptr,
                "ShardPool::execute is not reentrant");
        scatter_ = &scatter;
    }
    workCv_.notify_all();

    std::unique_lock<std::mutex> lock(mutex_);
    // Wait until every taken chunk has been handed back, even on
    // failure: worker threads hold pointers into this stack frame.
    doneCv_.wait(lock, [&] {
        return scatter.outstanding == 0 &&
               (scatter.pending.empty() ||
                !scatter.failureCode.empty());
    });
    scatter_ = nullptr;
    if (!scatter.failureCode.empty())
        throw ShardError(scatter.failureCode,
                         scatter.failureMessage);
    return std::move(scatter.results);
}

void
ShardPool::noteSuccess(Worker& worker)
{
    worker.healthy = true;
    worker.consecutiveFailures = 0;
    ++worker.chunksCompleted;
}

void
ShardPool::noteFailure(Worker& worker)
{
    ++worker.consecutiveFailures;
    ++worker.chunksFailed;
    if (worker.consecutiveFailures >= config_.failuresToUnhealthy)
        worker.healthy = false;
}

void
ShardPool::failScatter(const std::string& code,
                       const std::string& message)
{
    // Caller holds mutex_.  First failure wins; later ones are
    // usually knock-on effects of the same outage.
    if (scatter_ == nullptr || !scatter_->failureCode.empty())
        return;
    scatter_->failureCode = code;
    scatter_->failureMessage = message;
    doneCv_.notify_all();
    workCv_.notify_all();
}

bool
ShardPool::ensureConnected(Worker& worker)
{
    if (worker.socket.valid())
        return true;
    std::string error;
    worker.socket = net::Socket::connectTo(worker.spec.host,
                                           worker.spec.port, &error);
    if (!worker.socket.valid())
        return false;
    worker.socket.setTimeout(config_.requestTimeoutMillis);
    return true;
}

bool
ShardPool::runChunk(Worker& worker, Scatter& s,
                    const Chunk& chunk, unsigned& retry_wait)
{
    // Called from workerLoop with mutex_ released; the Scatter's
    // ref/flush/deadline are immutable once published and
    // execute() cannot return while this chunk is outstanding.
    retry_wait = 0;
    if (!ensureConnected(worker))
        return false;

    double remaining_millis = 0.0;
    if (s.deadline.time_since_epoch().count() != 0) {
        remaining_millis =
            std::chrono::duration<double, std::milli>(
                s.deadline - Clock::now())
                .count();
        if (remaining_millis <= 0.0)
            return false;
    }

    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("type", "batch");
    json.field("api_version", std::string(kApiVersion));
    json.field("request_id",
               "scatter-" + std::to_string(chunk.firstCell));
    json.field("trace_ref", s.ref.spec());
    if (s.ref.kind() == sim::TraceRef::Kind::Name) {
        // Legacy field: a pre-1.4 worker only understands names.
        json.field("workload", s.ref.value());
    }
    json.field("flush", s.flush);
    if (remaining_millis > 0.0)
        json.field("deadline_ms", remaining_millis);
    json.beginArray("configs");
    for (const core::CacheConfig& config : chunk.configs) {
        json.beginObject();
        writeCacheConfig(json, "config", config);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    countScatter(worker.spec.address());
    if (net::writeFrame(worker.socket, oss.str()) !=
        net::FrameStatus::Ok) {
        worker.socket.close();
        return false;
    }
    std::string response_text;
    if (net::readFrame(worker.socket, response_text) !=
        net::FrameStatus::Ok) {
        worker.socket.close();
        return false;
    }

    std::string parse_error;
    JsonValue response =
        JsonValue::parse(response_text, &parse_error);
    if (!parse_error.empty() || !response.isObject()) {
        worker.socket.close();
        return false;
    }
    if (!response.getBool("ok", false)) {
        std::string code = response.getString("code");
        if (code == "busy") {
            double hint =
                response.getNumber("retry_after_ms", 100.0);
            retry_wait = static_cast<unsigned>(
                std::max(1.0, std::min(hint, 5000.0)));
            return false;
        }
        // Any other daemon-level refusal (bad_request, internal)
        // will refuse identically everywhere: re-scattering cannot
        // help, so surface it as the scatter's failure.
        std::lock_guard<std::mutex> lock(mutex_);
        failScatter(code == "deadline_exceeded"
                        ? "deadline_exceeded"
                        : "shard_error",
                    "worker " + worker.spec.address() +
                        " refused chunk: " +
                        response.getString("error", code));
        return false;
    }

    const JsonValue& results =
        response.get("payload").get("results");
    if (!results.isArray() ||
        results.items().size() != chunk.configs.size()) {
        worker.socket.close();
        return false;
    }
    std::vector<sim::RunResult> cells;
    cells.reserve(results.items().size());
    try {
        for (const JsonValue& item : results.items())
            cells.push_back(parseRunResult(item.get("result")));
    } catch (const FatalError&) {
        worker.socket.close();
        return false;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    std::copy(cells.begin(), cells.end(),
              s.results.begin() +
                  static_cast<std::ptrdiff_t>(chunk.firstCell));
    return true;
}

void
ShardPool::workerLoop(Worker& worker)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait_for(
            lock,
            std::chrono::milliseconds(config_.probeIntervalMillis),
            [&] {
                return stopping_ ||
                       (scatter_ != nullptr &&
                        scatter_->failureCode.empty() &&
                        !scatter_->pending.empty());
            });
        if (stopping_)
            return;
        if (scatter_ == nullptr || !scatter_->failureCode.empty() ||
            scatter_->pending.empty())
            continue;
        Scatter& s = *scatter_;

        if (!worker.healthy) {
            // Probe before taking work: a dead worker that kept
            // pulling chunks would churn the queue.
            lock.unlock();
            worker.socket.close();
            bool connected = ensureConnected(worker);
            lock.lock();
            if (!connected) {
                bool any_healthy = false;
                for (const auto& other : workers_)
                    if (other->healthy)
                        any_healthy = true;
                if (!any_healthy &&
                    ++s.probeFailures >
                        static_cast<std::size_t>(
                            config_.maxChunkAttempts) *
                            workers_.size()) {
                    failScatter("shard_unavailable",
                                "no healthy workers and probes "
                                "keep failing");
                }
                continue;
            }
            worker.healthy = true;
            worker.consecutiveFailures = 0;
        }

        if (s.deadline.time_since_epoch().count() != 0 &&
            Clock::now() >= s.deadline) {
            failScatter("deadline_exceeded",
                        "deadline expired mid-scatter");
            continue;
        }

        Chunk chunk = std::move(s.pending.front());
        s.pending.pop_front();
        ++s.outstanding;
        ++chunk.attempts;
        lock.unlock();

        unsigned retry_wait = 0;
        bool ok = runChunk(worker, s, chunk, retry_wait);

        lock.lock();
        --s.outstanding;
        if (ok) {
            noteSuccess(worker);
            if (s.pending.empty() && s.outstanding == 0)
                doneCv_.notify_all();
            continue;
        }
        if (!s.failureCode.empty()) {
            // runChunk already failed the scatter (typed refusal);
            // the chunk dies with it.
            doneCv_.notify_all();
            continue;
        }
        if (retry_wait > 0) {
            // The worker is alive but shedding; honor its back-off
            // hint without counting a failure.
            s.pending.push_back(std::move(chunk));
            workCv_.notify_all();
            lock.unlock();
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(retry_wait, 250u)));
            lock.lock();
            continue;
        }
        noteFailure(worker);
        ++worker.rescatters;
        if (chunk.attempts >= config_.maxChunkAttempts) {
            failScatter("shard_unavailable",
                        "chunk at cell " +
                            std::to_string(chunk.firstCell) +
                            " failed after " +
                            std::to_string(chunk.attempts) +
                            " attempts");
            continue;
        }
        s.pending.push_back(std::move(chunk));
        workCv_.notify_all();
    }
}

} // namespace jcache::service
