/**
 * @file
 * Tests for the parallel sweep executor: determinism across thread
 * counts, oversubscription, report accounting, and CSV/JSON export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "sim/parallel.hh"
#include "sim/sweeps.hh"
#include "trace/recorder.hh"

namespace jcache::sim
{
namespace
{

using core::CacheConfig;
using core::WriteHitPolicy;
using core::WriteMissPolicy;
using trace::RefType;

/** A small trace with hits, misses, conflicts and dirty victims. */
trace::Trace
mixedTrace(const std::string& name, Addr seed)
{
    trace::Trace t(name);
    Addr base = seed * 0x40;
    for (unsigned i = 0; i < 400; ++i) {
        Addr addr = (base + i * 24) % 0x3000;
        t.append({addr & ~Addr{3}, 2, 4,
                  i % 3 ? RefType::Read : RefType::Write});
        // Conflicting line in a 1-4KB cache to force victims.
        if (i % 7 == 0)
            t.append({(addr + 0x1000) & ~Addr{3}, 1, 4,
                      RefType::Write});
    }
    return t;
}

/** The policy matrix crossed with two sizes and two line sizes. */
std::vector<CacheConfig>
policyMatrixConfigs()
{
    std::vector<CacheConfig> configs;
    for (auto [hit, miss] : legalPolicyPairs()) {
        for (Count size : {1024u, 4096u}) {
            for (unsigned line : {8u, 32u}) {
                CacheConfig c;
                c.sizeBytes = size;
                c.lineBytes = line;
                c.hitPolicy = hit;
                c.missPolicy = miss;
                configs.push_back(c);
            }
        }
    }
    return configs;
}

std::vector<SweepJob>
matrixGrid(const std::vector<trace::Trace>& traces,
           const std::vector<CacheConfig>& configs)
{
    std::vector<SweepJob> grid;
    for (const trace::Trace& t : traces) {
        for (const CacheConfig& c : configs)
            grid.push_back({&t, c, true});
    }
    return grid;
}

/** Field-by-field equality of everything a RunResult carries. */
void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.instructions, b.instructions);

    const core::CacheStats& s = a.cache;
    const core::CacheStats& o = b.cache;
    EXPECT_EQ(s.reads, o.reads);
    EXPECT_EQ(s.writes, o.writes);
    EXPECT_EQ(s.readHits, o.readHits);
    EXPECT_EQ(s.writeHits, o.writeHits);
    EXPECT_EQ(s.readMisses, o.readMisses);
    EXPECT_EQ(s.partialValidReadMisses, o.partialValidReadMisses);
    EXPECT_EQ(s.writeMisses, o.writeMisses);
    EXPECT_EQ(s.writeMissFetches, o.writeMissFetches);
    EXPECT_EQ(s.linesFetched, o.linesFetched);
    EXPECT_EQ(s.writesToDirtyLines, o.writesToDirtyLines);
    EXPECT_EQ(s.writeThroughs, o.writeThroughs);
    EXPECT_EQ(s.invalidations, o.invalidations);
    EXPECT_EQ(s.victims, o.victims);
    EXPECT_EQ(s.dirtyVictims, o.dirtyVictims);
    EXPECT_EQ(s.dirtyVictimDirtyBytes, o.dirtyVictimDirtyBytes);
    EXPECT_EQ(s.flushedValidLines, o.flushedValidLines);
    EXPECT_EQ(s.flushedDirtyLines, o.flushedDirtyLines);
    EXPECT_EQ(s.flushedDirtyBytes, o.flushedDirtyBytes);

    auto traffic_eq = [](const mem::TrafficClass& x,
                         const mem::TrafficClass& y) {
        EXPECT_EQ(x.transactions, y.transactions);
        EXPECT_EQ(x.bytes, y.bytes);
    };
    traffic_eq(a.fetchTraffic, b.fetchTraffic);
    traffic_eq(a.writeThroughTraffic, b.writeThroughTraffic);
    traffic_eq(a.writeBackTraffic, b.writeBackTraffic);
    traffic_eq(a.flushTraffic, b.flushTraffic);
}

TEST(ParallelExecutor, MultiThreadMatchesSingleThreadExactly)
{
    std::vector<trace::Trace> traces;
    traces.push_back(mixedTrace("alpha", 1));
    traces.push_back(mixedTrace("beta", 5));
    traces.push_back(mixedTrace("gamma", 11));
    std::vector<SweepJob> grid =
        matrixGrid(traces, policyMatrixConfigs());

    SweepOutcome serial = ParallelExecutor(1).run(grid);
    SweepOutcome wide = ParallelExecutor(4).run(grid);

    ASSERT_EQ(serial.results.size(), grid.size());
    ASSERT_EQ(wide.results.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectIdentical(serial.results[i], wide.results[i]);
}

TEST(ParallelExecutor, OversubscribedPoolStillCoversEveryJob)
{
    std::vector<trace::Trace> traces;
    traces.push_back(mixedTrace("tiny", 3));
    std::vector<CacheConfig> configs(3);  // 3-job grid
    std::vector<SweepJob> grid = matrixGrid(traces, configs);

    // Far more threads than jobs: every job must still run exactly
    // once and the report must reflect the clamped pool.
    SweepOutcome outcome = ParallelExecutor(16).run(grid);
    ASSERT_EQ(outcome.results.size(), 3u);
    EXPECT_EQ(outcome.report.threads, 3u);
    for (const RunResult& r : outcome.results)
        EXPECT_GT(r.instructions, 0u);

    SweepOutcome reference = ParallelExecutor(1).run(grid);
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectIdentical(reference.results[i], outcome.results[i]);
}

TEST(ParallelExecutor, EmptyGrid)
{
    SweepOutcome outcome = ParallelExecutor(4).run({});
    EXPECT_TRUE(outcome.results.empty());
    EXPECT_EQ(outcome.report.jobs(), 0u);
    EXPECT_EQ(outcome.report.totalInstructions(), 0u);
    EXPECT_DOUBLE_EQ(outcome.report.utilization(), 0.0);
}

TEST(ParallelExecutor, RunTasksVisitsEachIndexOnce)
{
    std::vector<std::atomic<int>> visits(100);
    ParallelExecutor(8).runTasks(100, [&](std::size_t i) {
        visits[i].fetch_add(1);
        return Count{i + 1};
    });
    for (const auto& v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ParallelExecutor, ReportAccountsInstructionsAndUtilization)
{
    std::vector<trace::Trace> traces;
    traces.push_back(mixedTrace("acct", 7));
    std::vector<CacheConfig> configs(4);
    std::vector<SweepJob> grid = matrixGrid(traces, configs);

    SweepOutcome outcome = ParallelExecutor(2).run(grid);
    const SweepReport& report = outcome.report;
    ASSERT_EQ(report.jobs(), grid.size());

    Count expected = 0;
    for (const RunResult& r : outcome.results)
        expected += r.instructions;
    EXPECT_EQ(report.totalInstructions(), expected);
    EXPECT_GT(report.totalInstructions(), 0u);
    EXPECT_GE(report.wallSeconds, 0.0);
    EXPECT_GE(report.busySeconds(), 0.0);
    EXPECT_GE(report.utilization(), 0.0);
    EXPECT_LE(report.utilization(), 1.0);
    EXPECT_FALSE(report.summary().empty());
}

TEST(ParallelExecutor, ThrowingTaskFailsOnlyItsCell)
{
    // An exception escaping a pool thread would terminate the whole
    // process; the executor must confine it to the throwing cell.
    std::vector<std::atomic<int>> visits(8);
    SweepReport report =
        ParallelExecutor(4).runTasks(8, [&](std::size_t i) {
            visits[i].fetch_add(1);
            if (i == 2)
                throw std::runtime_error("boom at 2");
            if (i == 5)
                throw 42;  // non-std::exception path
            return Count{100};
        });

    // Every cell ran despite the two failures.
    for (const auto& v : visits)
        EXPECT_EQ(v.load(), 1);

    EXPECT_FALSE(report.allSucceeded());
    ASSERT_EQ(report.failures.size(), 2u);
    EXPECT_EQ(report.failures[0].index, 2u);
    EXPECT_EQ(report.failures[0].message, "boom at 2");
    EXPECT_EQ(report.failures[1].index, 5u);
    EXPECT_EQ(report.failures[1].message, "unknown error");

    // Failed cells contribute no instructions; healthy cells do.
    EXPECT_EQ(report.totalInstructions(), 600u);
    EXPECT_NE(report.summary().find("2 FAILED"), std::string::npos);

    std::ostringstream oss;
    report.writeJson(oss);
    EXPECT_NE(oss.str().find("\"failures\""), std::string::npos);
    EXPECT_NE(oss.str().find("boom at 2"), std::string::npos);
}

TEST(ParallelExecutor, AllSucceededOnCleanGrid)
{
    SweepReport report = ParallelExecutor(2).runTasks(
        4, [](std::size_t) { return Count{1}; });
    EXPECT_TRUE(report.allSucceeded());
    EXPECT_EQ(report.summary().find("FAILED"), std::string::npos);
}

TEST(ParallelExecutor, ProgressCallbackSeesEveryCompletion)
{
    std::vector<std::size_t> seen;
    ParallelExecutor executor(
        4, [&](std::size_t done, std::size_t total) {
            EXPECT_EQ(total, 10u);
            seen.push_back(done);
        });
    executor.runTasks(10, [](std::size_t) { return Count{0}; });
    ASSERT_EQ(seen.size(), 10u);
    // Callbacks are serialized; done counts are the 1..10 set in some
    // completion order, ending at 10.
    std::sort(seen.begin(), seen.end());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i + 1);
}

TEST(SweepReport, CsvHasHeaderAndOneRowPerJob)
{
    SweepReport report;
    report.threads = 2;
    report.wallSeconds = 0.5;
    report.timings = {{0.25, 1000}, {0.25, 3000}};

    std::ostringstream oss;
    report.writeCsv(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("job,wall_seconds,instructions,m_ins_per_sec"),
              std::string::npos);
    std::size_t rows = 0;
    for (char ch : out)
        rows += ch == '\n';
    EXPECT_EQ(rows, 3u);  // header + 2 jobs
}

TEST(SweepReport, JsonIsBalancedAndCarriesTotals)
{
    SweepReport report;
    report.threads = 4;
    report.wallSeconds = 2.0;
    report.timings = {{1.0, 4000000}, {1.0, 4000000}};

    std::ostringstream oss;
    report.writeJson(oss);
    std::string out = oss.str();

    long depth = 0;
    for (char ch : out) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_NE(out.find("\"threads\": 4"), std::string::npos);
    EXPECT_NE(out.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"instructions\": 8000000"),
              std::string::npos);
    EXPECT_NE(out.find("\"m_ins_per_sec\": 4"), std::string::npos);
    EXPECT_NE(out.find("\"utilization\": 0.25"), std::string::npos);
    EXPECT_NE(out.find("\"job_timings\""), std::string::npos);
}

TEST(TraceSetStandard, ConcurrentFirstUseYieldsOneInstance)
{
    // The once_flag guard must make racing first calls safe and give
    // every caller the same instance.
    std::vector<const TraceSet*> seen(4, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < seen.size(); ++i)
        threads.emplace_back(
            [&seen, i] { seen[i] = &TraceSet::standard(); });
    for (std::thread& t : threads)
        t.join();
    for (const TraceSet* p : seen) {
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p, seen.front());
    }
    EXPECT_EQ(seen.front()->size(), 6u);
}

TEST(DefaultJobs, OverrideAndRestore)
{
    setDefaultJobs(3);
    EXPECT_EQ(defaultJobs(), 3u);
    EXPECT_EQ(ParallelExecutor().threads(), 3u);
    setDefaultJobs(0);
    EXPECT_GE(defaultJobs(), 1u);
}

} // namespace
} // namespace jcache::sim
