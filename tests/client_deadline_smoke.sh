#!/bin/sh
# Wall-clock bound of the client's retry loop.
#
# The retry loop used to count *attempts* while each attempt could
# burn a full connect/read timeout, so "--retry 5" against a stuck
# daemon meant minutes of hanging.  --deadline MS is a total budget:
# however the attempts fail, the client must give up within it.
#
#   1. against a *closed* port (instant ECONNREFUSED, so the attempt
#      counter alone would allow 50 tries x growing backoff), the
#      budget stops the loop in ~1.5s with a "deadline budget" error
#   2. against a *stopped* daemon (connections land in the accept
#      backlog and never get answered, so every attempt burns its
#      read timeout), the budget still holds; attempt timeouts are
#      shrunk to the remaining budget
#   3. a resumed daemon serves the same command again: the budget
#      failure poisoned nothing
#
# Usage: client_deadline_smoke.sh <jcached> <jcache-client> <workdir>
set -eu

JCACHED=$1
CLIENT=$2
WORKDIR=$3

mkdir -p "$WORKDIR"
PORT_FILE="$WORKDIR/jcached.port"
DAEMON_LOG="$WORKDIR/jcached.log"
DAEMON_PID=""

fail() {
    echo "client_deadline_smoke: FAIL: $1" >&2
    [ -s "$DAEMON_LOG" ] && sed 's/^/  jcached: /' "$DAEMON_LOG" >&2
    [ -n "$DAEMON_PID" ] && kill -CONT "$DAEMON_PID" 2>/dev/null
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    exit 1
}

start_daemon() {
    rm -f "$PORT_FILE"
    "$JCACHED" --port 0 --port-file "$PORT_FILE" \
        > "$DAEMON_LOG" 2>&1 &
    DAEMON_PID=$!
    tries=0
    while [ ! -s "$PORT_FILE" ]; do
        tries=$((tries + 1))
        [ "$tries" -gt 100 ] && fail "daemon never wrote its port"
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited early"
        sleep 0.1
    done
    PORT=$(cat "$PORT_FILE")
}

# Phase 1: a port nothing listens on.  Borrow an ephemeral port from
# a short-lived daemon so the refusal is deterministic.
start_daemon
kill "$DAEMON_PID" && wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "client_deadline_smoke: phase 1, closed port $PORT"

BEGIN=$(date +%s)
if "$CLIENT" --port "$PORT" --retry 50 --backoff 100 \
    --deadline 1500 ping > /dev/null 2> "$WORKDIR/refused.err"; then
    fail "ping against a closed port succeeded"
fi
ELAPSED=$(( $(date +%s) - BEGIN ))
[ "$ELAPSED" -le 10 ] \
    || fail "budget of 1.5s let the client spin for ${ELAPSED}s"
grep -q "deadline budget" "$WORKDIR/refused.err" \
    || fail "no deadline-budget error: $(cat "$WORKDIR/refused.err")"
echo "client_deadline_smoke: closed port gave up in ${ELAPSED}s"

# Phase 2: a daemon that accepts but never answers (SIGSTOP keeps the
# listener's backlog open while nothing reads the requests).
start_daemon
echo "client_deadline_smoke: phase 2, daemon pid $DAEMON_PID port $PORT"
"$CLIENT" --port "$PORT" --deadline 5000 ping > /dev/null \
    || fail "ping with a sane deadline"
kill -STOP "$DAEMON_PID"

BEGIN=$(date +%s)
if "$CLIENT" --port "$PORT" --timeout 400 --retry 10 --backoff 100 \
    --deadline 2000 ping > /dev/null 2> "$WORKDIR/stuck.err"; then
    kill -CONT "$DAEMON_PID"
    fail "ping against a stopped daemon succeeded"
fi
ELAPSED=$(( $(date +%s) - BEGIN ))
[ "$ELAPSED" -le 12 ] \
    || fail "budget of 2s let the client hang for ${ELAPSED}s"
grep -q "deadline budget" "$WORKDIR/stuck.err" \
    || fail "no deadline-budget error: $(cat "$WORKDIR/stuck.err")"
echo "client_deadline_smoke: stopped daemon gave up in ${ELAPSED}s"

# Phase 3: resume; the daemon and the client both still work.
kill -CONT "$DAEMON_PID"
"$CLIENT" --port "$PORT" --retry --deadline 10000 ping > /dev/null \
    || fail "ping after resume"
"$CLIENT" --port "$PORT" --retry shutdown > /dev/null \
    || fail "shutdown"
tries=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    tries=$((tries + 1))
    [ "$tries" -gt 100 ] && fail "daemon did not exit"
    sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || true
echo "client_deadline_smoke: PASS"
