/**
 * @file
 * One-pass multi-configuration trace replay.
 *
 * runTrace() decodes the trace once per cache configuration; a sweep
 * over a 32-cell grid therefore decodes the same records 32 times
 * and streams a fresh cache image through memory for every cell.
 * runTracePass() inverts the loop: it walks the trace in blocks
 * (trace/blocks.hh) and feeds each block to every configuration
 * before moving on, so the record stream is read once and all lane
 * state stays hot.
 *
 * Two lane kinds share that outer loop:
 *
 *  - **Fast lanes** — direct-mapped, byte-granularity configurations
 *    (every grid the paper's Figures 13-16 sweep).  State is kept as
 *    structure-of-arrays (tags / valid masks / dirty masks), a
 *    sentinel tag makes the hit test a single compare, and the write
 *    policies are template parameters so policy dispatch happens once
 *    per block instead of once per access.  Lanes with the same line
 *    size additionally share one decode of each block into
 *    line-aligned pieces.
 *  - **Generic lanes** — anything else (assoc > 1, or a valid-bit
 *    granularity above one byte) falls back to the reference
 *    DataCache fed record by record, so runTracePass() accepts every
 *    configuration runTrace() does.
 *
 * Both kinds reproduce DataCache's counter and traffic accounting
 * exactly; tests/test_engine_differential.cc holds the engine to
 * byte-identical RunResults against runTrace().
 */

#ifndef JCACHE_SIM_MULTICONFIG_HH
#define JCACHE_SIM_MULTICONFIG_HH

#include <cstddef>
#include <vector>

#include "core/config.hh"
#include "sim/run.hh"
#include "trace/blocks.hh"
#include "trace/trace.hh"

namespace jcache::sim
{

/** One lane of a one-pass replay: a configuration plus its flush. */
struct LaneSpec
{
    core::CacheConfig config;

    /** Drain dirty lines at end of trace (flush-stop statistics). */
    bool flushAtEnd = false;
};

/**
 * Can this configuration use the specialized fast lane?
 *
 * True for direct-mapped caches with byte-granularity valid bits —
 * the combination every figure in the paper sweeps.  Other
 * configurations still run, via the generic DataCache lane.
 */
bool fastLaneEligible(const core::CacheConfig& config);

/**
 * Replay `trace` once through every lane.
 *
 * @param trace         the reference stream.
 * @param lanes         configurations to simulate; each is validated.
 * @param blockRecords  records per block of the outer walk; the
 *                      default is tuned, see trace::kDefaultBlockRecords.
 * @return one RunResult per lane, in `lanes` order, byte-identical to
 *         runTrace(trace, lanes[i].config, lanes[i].flushAtEnd).
 *
 * Emits a `sweep.trace_pass` span and advances the
 * `jcache_engine_records_total` counter when telemetry is armed.
 */
std::vector<RunResult>
runTracePass(const trace::Trace& trace,
             const std::vector<LaneSpec>& lanes,
             std::size_t blockRecords = trace::kDefaultBlockRecords);

} // namespace jcache::sim

#endif // JCACHE_SIM_MULTICONFIG_HH
