/**
 * @file
 * Minimal JSON parsing for the wire protocol.
 *
 * stats/json.hh writes JSON; the service needs the other direction to
 * decode requests (and the client to decode responses).  JsonValue is
 * a small immutable DOM: parse() builds one from a complete document
 * and reports malformed input via error string — requests arrive from
 * the network, so parse failure is an expected condition, never an
 * exception or abort.
 *
 * Supported: objects, arrays, strings (all RFC 8259 escapes including
 * \uXXXX surrogate pairs), numbers (as double), booleans, null.
 * Nesting depth is capped so a hostile request cannot overflow the
 * parser's stack.
 */

#ifndef JCACHE_SERVICE_JSON_VALUE_HH
#define JCACHE_SERVICE_JSON_VALUE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jcache::service
{

/** One parsed JSON value. */
class JsonValue
{
  public:
    /** The JSON type of this value. */
    enum class Type : unsigned char
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** The boolean payload (false unless isBool()). */
    bool boolean() const { return bool_; }

    /** The numeric payload (0 unless isNumber()). */
    double number() const { return number_; }

    /** The string payload (empty unless isString()). */
    const std::string& string() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue>& items() const { return items_; }

    /**
     * Object member by key, or null-typed sentinel when the key is
     * absent (or this is not an object) — lookups chain safely.
     */
    const JsonValue& get(const std::string& key) const;

    /** True if this object has the member. */
    bool has(const std::string& key) const;

    /** Member as string with a default for absent/mistyped values. */
    std::string getString(const std::string& key,
                          const std::string& fallback = "") const;

    /** Member as number with a default for absent/mistyped values. */
    double getNumber(const std::string& key, double fallback) const;

    /** Member as bool with a default for absent/mistyped values. */
    bool getBool(const std::string& key, bool fallback) const;

    /**
     * Parse a complete JSON document.  On failure returns a null
     * value and sets `error` (when non-null) to a message with the
     * byte offset.  Trailing non-whitespace is an error.
     */
    static JsonValue parse(const std::string& text,
                           std::string* error = nullptr);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::map<std::string, JsonValue> members_;

    friend class JsonParser;
};

} // namespace jcache::service

#endif // JCACHE_SERVICE_JSON_VALUE_HH
