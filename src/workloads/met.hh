/**
 * @file
 * met: the paper's PC-board CAD benchmark #2.
 *
 * Re-implements a range-limited simulated-annealing standard-cell
 * placer: cells on a grid, nets connecting them, half-perimeter
 * bounding-box wirelength cost.  Each move swaps two nearby cells,
 * re-evaluates the nets touching them (reads over adjacency lists),
 * and commits position and cached-cost updates on acceptance — a mix
 * of read-mostly netlist traversal and clustered writes.
 */

#ifndef JCACHE_WORKLOADS_MET_HH
#define JCACHE_WORKLOADS_MET_HH

#include "workloads/workload.hh"

namespace jcache::workloads
{

/**
 * Simulated-annealing standard-cell placement.
 */
class MetWorkload : public Workload
{
  public:
    /**
     * @param config standard knobs; scale multiplies the number of
     *               annealing moves.
     * @param cells  number of cells.
     * @param moves  base number of proposed moves per run.
     */
    explicit MetWorkload(const WorkloadConfig& config = {},
                         unsigned cells = 3000, unsigned moves = 7000)
        : Workload(config), cells_(cells), moves_(moves)
    {}

    std::string name() const override { return "met"; }
    std::string description() const override
    {
        return "PC board CAD tool (annealing placer)";
    }

    void run(trace::TraceRecorder& recorder) const override;

  private:
    unsigned cells_;
    unsigned moves_;
};

} // namespace jcache::workloads

#endif // JCACHE_WORKLOADS_MET_HH
