/**
 * @file
 * Implementation of the metrics instruments and registry.
 */

#include "telemetry/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/logging.hh"

namespace jcache::telemetry
{

namespace
{

/** CAS-add for pre-C++20-style atomic doubles (relaxed). */
void
atomicAdd(std::atomic<double>& target, double delta)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double>& target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value < current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double>& target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

bool
validMetricName(const std::string& name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

/** Canonical key of a label set, for instrument lookup. */
std::string
labelKey(const Labels& labels)
{
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string key;
    for (const auto& [k, v] : sorted) {
        key += k;
        key += '\x1f';
        key += v;
        key += '\x1e';
    }
    return key;
}

const char*
kindName(InstrumentKind kind)
{
    switch (kind) {
      case InstrumentKind::Counter:
        return "counter";
      case InstrumentKind::Gauge:
        return "gauge";
      case InstrumentKind::Histogram:
        return "histogram";
    }
    return "unknown";
}

} // namespace

namespace detail
{

std::atomic<bool> armed{false};

bool
armedSlow()
{
    const char* env = std::getenv("JCACHE_TELEMETRY");
    if (env && *env && std::string(env) != "0")
        armed.store(true, std::memory_order_relaxed);
    return true;
}

} // namespace detail

void
setArmed(bool on)
{
    detail::armed.store(on, std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    std::uint64_t sum = 0;
    for (const Shard& shard : shards_)
        sum += shard.value.load(std::memory_order_relaxed);
    return sum;
}

unsigned
Counter::shardIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned index =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
}

void
Gauge::add(double delta)
{
    atomicAdd(value_, delta);
}

Histogram::Histogram(const HistogramOptions& options)
{
    fatalIf(options.minBound <= 0.0 ||
                options.maxBound <= options.minBound ||
                options.bucketsPerDecade == 0,
            "histogram: bounds must satisfy 0 < min < max with at "
            "least one bucket per decade");
    double factor =
        std::pow(10.0, 1.0 / options.bucketsPerDecade);
    double bound = options.minBound;
    while (true) {
        bounds_.push_back(bound);
        if (bound >= options.maxBound)
            break;
        bound *= factor;
    }
    counts_ = std::vector<std::atomic<std::uint64_t>>(
        bounds_.size() + 1);
    // Extremes start saturated so concurrent first observations need
    // no seeding handshake; min()/max() report 0 while empty.
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, value);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicMin(min_, value);
    atomicMax(max_, value);
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::min() const
{
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    return i < counts_.size()
        ? counts_[i].load(std::memory_order_relaxed)
        : 0;
}

double
Histogram::percentile(double p) const
{
    std::uint64_t total = 0;
    std::vector<std::uint64_t> counts(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts[i] = counts_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;

    // Nearest-rank target, matching the service's historical
    // sorted-sample percentile; interpolation inside the selected
    // bucket smooths between its bounds.
    double rank = p / 100.0 * static_cast<double>(total - 1);
    std::uint64_t before = 0;
    std::size_t bucket = counts.size() - 1;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        if (static_cast<double>(before + counts[i]) > rank) {
            bucket = i;
            break;
        }
        before += counts[i];
    }

    double observed_min = min();
    double observed_max = max();
    double lower = bucket == 0 ? 0.0 : bounds_[bucket - 1];
    double upper = bucket < bounds_.size() ? bounds_[bucket]
                                           : observed_max;
    std::uint64_t in_bucket = counts[bucket];
    double fraction = in_bucket == 0
        ? 0.0
        : (rank - static_cast<double>(before)) /
              static_cast<double>(in_bucket);
    double estimate = lower + (upper - lower) * fraction;
    // The exact extremes bound the estimate: a single-sample
    // histogram answers that sample, and the overflow bucket answers
    // the true maximum instead of a bucket bound.
    if (estimate < observed_min)
        estimate = observed_min;
    if (estimate > observed_max)
        estimate = observed_max;
    return estimate;
}

Registry&
Registry::instance()
{
    // Intentionally leaked: instrumentation sites cache references
    // and may fire during static destruction.
    static Registry* registry = new Registry();
    return *registry;
}

Registry::Family&
Registry::family(const std::string& name, const std::string& help,
                 InstrumentKind kind)
{
    fatalIf(!validMetricName(name),
            "metric name '" + name +
                "' violates [a-zA-Z_:][a-zA-Z0-9_:]*");
    auto it = families_.find(name);
    if (it == families_.end()) {
        Family family;
        family.help = help;
        family.kind = kind;
        it = families_.emplace(name, std::move(family)).first;
    }
    fatalIf(it->second.kind != kind,
            "metric '" + name + "' already registered as " +
                kindName(it->second.kind) + ", requested " +
                kindName(kind));
    return it->second;
}

Counter&
Registry::counter(const std::string& name, const std::string& help,
                  const Labels& labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family& fam = family(name, help, InstrumentKind::Counter);
    Instrument& inst = fam.instruments[labelKey(labels)];
    if (!inst.counter) {
        inst.labels = labels;
        inst.counter = std::make_unique<Counter>();
    }
    return *inst.counter;
}

Gauge&
Registry::gauge(const std::string& name, const std::string& help,
                const Labels& labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family& fam = family(name, help, InstrumentKind::Gauge);
    Instrument& inst = fam.instruments[labelKey(labels)];
    if (!inst.gauge) {
        inst.labels = labels;
        inst.gauge = std::make_unique<Gauge>();
    }
    return *inst.gauge;
}

Histogram&
Registry::histogram(const std::string& name, const std::string& help,
                    const HistogramOptions& options,
                    const Labels& labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family& fam = family(name, help, InstrumentKind::Histogram);
    Instrument& inst = fam.instruments[labelKey(labels)];
    if (!inst.histogram) {
        inst.labels = labels;
        inst.histogram = std::make_unique<Histogram>(options);
    }
    return *inst.histogram;
}

std::vector<FamilySnapshot>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FamilySnapshot> out;
    out.reserve(families_.size());
    for (const auto& [name, fam] : families_) {
        FamilySnapshot snap;
        snap.name = name;
        snap.help = fam.help;
        snap.kind = fam.kind;
        for (const auto& [key, inst] : fam.instruments) {
            if (inst.counter) {
                snap.samples.push_back(
                    {inst.labels,
                     static_cast<double>(inst.counter->value())});
            } else if (inst.gauge) {
                snap.samples.push_back(
                    {inst.labels, inst.gauge->value()});
            } else if (inst.histogram) {
                HistogramSnapshot h;
                h.labels = inst.labels;
                const Histogram& histogram = *inst.histogram;
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0;
                     i < histogram.bounds().size(); ++i) {
                    cumulative += histogram.bucketCount(i);
                    h.cumulative.emplace_back(histogram.bounds()[i],
                                              cumulative);
                }
                h.count = histogram.count();
                h.sum = histogram.sum();
                snap.histograms.push_back(std::move(h));
            }
        }
        out.push_back(std::move(snap));
    }
    return out;
}

} // namespace jcache::telemetry
