/**
 * @file
 * Implementation of VictimCache.
 */

#include "core/victim_cache.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace jcache::core
{

VictimCache::VictimCache(unsigned entries, unsigned line_bytes,
                         mem::MemLevel* next)
    : lineBytes_(line_bytes), next_(next), entries_(entries)
{
    fatalIf(!isPowerOfTwo(line_bytes),
            "victim cache line size must be a power of two");
}

void
VictimCache::drainEntry(Entry& entry)
{
    if (entry.valid && entry.dirty != 0 && next_) {
        next_->writeBack(entry.addr, lineBytes_,
                         popcount(entry.dirty));
    }
    entry.valid = false;
    entry.dirty = 0;
}

void
VictimCache::insert(Addr line_addr, ByteMask dirty)
{
    ++insertions_;
    ++useCounter_;
    if (entries_.empty()) {
        // Degenerate victim cache: dirty victims go straight down.
        if (dirty != 0 && next_)
            next_->writeBack(line_addr, lineBytes_, popcount(dirty));
        return;
    }

    Entry* slot = nullptr;
    for (Entry& e : entries_) {
        if (!e.valid) {
            slot = &e;
            break;
        }
        if (!slot || e.lastUse < slot->lastUse)
            slot = &e;
    }
    if (slot->valid) {
        drainEntry(*slot);
        ++evictions_;
    }
    slot->addr = line_addr;
    slot->dirty = dirty;
    slot->valid = true;
    slot->lastUse = useCounter_;
}

std::optional<ByteMask>
VictimCache::probe(Addr line_addr)
{
    ++probes_;
    ++useCounter_;
    for (Entry& e : entries_) {
        if (e.valid && e.addr == line_addr) {
            ++hits_;
            ByteMask dirty = e.dirty;
            e.valid = false;
            e.dirty = 0;
            return dirty;
        }
    }
    return std::nullopt;
}

void
VictimCache::flush()
{
    for (Entry& e : entries_)
        drainEntry(e);
}

unsigned
VictimCache::occupancy() const
{
    return static_cast<unsigned>(
        std::count_if(entries_.begin(), entries_.end(),
                      [](const Entry& e) { return e.valid; }));
}

void
VictimCache::reset()
{
    for (Entry& e : entries_)
        e = Entry{};
    useCounter_ = 0;
    insertions_ = 0;
    hits_ = 0;
    probes_ = 0;
    evictions_ = 0;
}

} // namespace jcache::core
