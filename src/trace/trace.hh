/**
 * @file
 * An in-memory data-reference trace.
 *
 * A Trace is an append-only sequence of TraceRecords plus the workload
 * name it came from.  Traces are generated once per workload and then
 * replayed through many cache configurations, so the container is a
 * flat vector for replay speed.
 */

#ifndef JCACHE_TRACE_TRACE_HH
#define JCACHE_TRACE_TRACE_HH

#include <string>
#include <vector>

#include "trace/record.hh"

namespace jcache::trace
{

/**
 * An append-only in-memory trace.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    /** Append one record. */
    void append(const TraceRecord& record) { records_.push_back(record); }

    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const std::vector<TraceRecord>& records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    const TraceRecord& operator[](std::size_t i) const
    {
        return records_[i];
    }

    /** Pre-allocate capacity for n records. */
    void reserve(std::size_t n) { records_.reserve(n); }

    bool operator==(const Trace&) const = default;

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
};

/**
 * FNV-1a 64 content digest of a trace's records, as fixed-width hex.
 * Hashes every field of every record in a fixed byte order (not the
 * in-memory layout), so the digest is stable across platforms and
 * struct padding.  Two traces share a digest iff a replay through
 * them is identical; the name does not participate.
 */
std::string contentDigest(const Trace& trace);

/**
 * The identity string a trace contributes to result keys:
 * `<name>#<contentDigest>#<record count>`.  Equal identities mean
 * equal replay inputs, so cached results keyed by this string can be
 * shared between the service, the offline tools and the persistent
 * result store — and can never be served for a different trace that
 * merely reuses a workload name.
 */
std::string traceIdentity(const Trace& trace);

/** True if the record is well-formed (power-of-two size 1..8). */
bool isValid(const TraceRecord& record);

/**
 * Throw FatalError if any record in the trace is malformed.  Used when
 * loading traces from files, where corruption is possible.
 */
void validate(const Trace& trace);

} // namespace jcache::trace

#endif // JCACHE_TRACE_TRACE_HH
