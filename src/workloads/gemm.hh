/**
 * @file
 * gemm: extension workload for the paper's blocking claim.
 *
 * Section 3 predicts: "as numeric and other programs are restructured
 * to make better use of caches ... the usefulness of write-back
 * caches will increase.  For example, with block-mode numerical
 * algorithms the percentage of write traffic saved should be
 * significantly higher."
 *
 * GemmWorkload computes C += A*B by k-blocks in two schedules that
 * perform identical arithmetic and identical reference counts but in
 * different orders:
 *
 *  - streaming: for each k-block, sweep the whole C matrix (C is
 *    evicted between visits — the vector-machine-style order);
 *  - blocked:   for each C tile, run all k-blocks while the tile is
 *    resident (the cache-blocked order).
 *
 * The write-traffic reduction of a write-back cache should be far
 * higher for the blocked schedule.
 */

#ifndef JCACHE_WORKLOADS_GEMM_HH
#define JCACHE_WORKLOADS_GEMM_HH

#include "workloads/workload.hh"

namespace jcache::workloads
{

/**
 * Dense matrix multiply, streaming or cache-blocked schedule.
 */
class GemmWorkload : public Workload
{
  public:
    /**
     * @param config  standard knobs (scale repeats the multiply).
     * @param blocked true for the cache-blocked schedule.
     * @param n       matrix order.
     * @param kb      k-block depth (and tile edge when blocked).
     */
    explicit GemmWorkload(const WorkloadConfig& config = {},
                          bool blocked = false, unsigned n = 96,
                          unsigned kb = 16)
        : Workload(config), blocked_(blocked), n_(n), kb_(kb)
    {}

    std::string name() const override
    {
        return blocked_ ? "gemm-blocked" : "gemm-streaming";
    }

    std::string description() const override
    {
        return blocked_ ? "numeric, cache-blocked matrix multiply"
                        : "numeric, streaming matrix multiply";
    }

    void run(trace::TraceRecorder& recorder) const override;

  private:
    bool blocked_;
    unsigned n_;
    unsigned kb_;
};

} // namespace jcache::workloads

#endif // JCACHE_WORKLOADS_GEMM_HH
