/**
 * @file
 * Implementation of the CoDel-style admission controller.
 */

#include "service/admission.hh"

#include <algorithm>
#include <vector>

namespace jcache::service
{

std::optional<AdmissionMode>
parseAdmissionMode(const std::string& text)
{
    if (text == "queue-cap")
        return AdmissionMode::QueueCap;
    if (text == "codel")
        return AdmissionMode::Codel;
    return std::nullopt;
}

std::string
name(AdmissionMode mode)
{
    return mode == AdmissionMode::QueueCap ? "queue-cap" : "codel";
}

AdmissionController::AdmissionController(
    const AdmissionConfig& config)
    : config_(config)
{
}

double
AdmissionController::windowP50Locked() const
{
    if (window_.empty())
        return 0.0;
    std::vector<double> sorted;
    sorted.reserve(window_.size());
    for (const auto& sample : window_)
        sorted.push_back(sample.second);
    // Upper median: with an even count the larger of the two middle
    // samples, so one slow job among two is already visible.
    std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + mid,
                     sorted.end());
    return sorted[mid];
}

bool
AdmissionController::shouldShed(double sojournSeconds,
                                std::size_t queuedBehind,
                                Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);

    window_.emplace_back(now, sojournSeconds * 1000.0);
    while (window_.size() > config_.windowSamples)
        window_.pop_front();
    // Age out samples older than one interval; the freshly pushed
    // sample always survives, so the window is never empty here.
    auto horizon = std::chrono::duration<double, std::milli>(
        config_.intervalMillis);
    while (window_.size() > 1 &&
           now - window_.front().first >
               std::chrono::duration_cast<Clock::duration>(horizon)) {
        window_.pop_front();
    }

    double p50 = windowP50Locked();
    if (p50 <= config_.targetMillis) {
        aboveArmed_ = false;
        dropping_ = false;
        dropCount_ = 0;
        return false;
    }

    if (config_.mode != AdmissionMode::Codel)
        return false;

    if (!dropping_) {
        if (!aboveArmed_) {
            aboveArmed_ = true;
            aboveSince_ = now;
            return false;
        }
        if (now - aboveSince_ <
            std::chrono::duration_cast<Clock::duration>(horizon)) {
            return false;
        }
        dropping_ = true;
        dropCount_ = 0;
    }

    // Never shed the last job standing: with nothing queued behind
    // it, running it is strictly better than bouncing it.
    if (queuedBehind == 0)
        return false;

    ++dropCount_;
    ++totalDropped_;
    return true;
}

std::uint64_t
AdmissionController::dropCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropCount_;
}

AdmissionState
AdmissionController::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    AdmissionState state;
    state.dropping = dropping_;
    state.dropCount = dropCount_;
    state.totalDropped = totalDropped_;
    state.windowP50Millis = windowP50Locked();
    state.windowSamples = window_.size();
    return state;
}

} // namespace jcache::service
