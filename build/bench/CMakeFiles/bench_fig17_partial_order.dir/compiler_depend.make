# Empty compiler generated dependencies file for bench_fig17_partial_order.
# This may be replaced when dependencies are built.
