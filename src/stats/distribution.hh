/**
 * @file
 * Running-statistics accumulators.
 *
 * RunningStat tracks count/mean/min/max/variance of a stream of samples
 * (Welford's algorithm).  Histogram buckets integer samples into
 * fixed-width bins.  The dirty-victim figures (20-25) are averages over
 * per-victim samples, which these classes accumulate.
 */

#ifndef JCACHE_STATS_DISTRIBUTION_HH
#define JCACHE_STATS_DISTRIBUTION_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace jcache::stats
{

/**
 * Streaming mean/variance/min/max accumulator (Welford).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double sample);

    Count count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;
    double stddev() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat& other);

    void reset() { *this = RunningStat(); }

  private:
    Count count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over [0, bins*binWidth); samples beyond the top
 * bin clamp into it.
 */
class Histogram
{
  public:
    /**
     * @param bins       number of buckets (must be > 0).
     * @param bin_width  width of each bucket (must be > 0).
     */
    Histogram(std::size_t bins, double bin_width);

    void add(double sample);

    Count total() const { return total_; }
    Count bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t bins() const { return buckets_.size(); }
    double binWidth() const { return binWidth_; }

    /** Fraction of samples in bucket i (0 if empty histogram). */
    double fraction(std::size_t i) const;

    void reset();

  private:
    std::vector<Count> buckets_;
    double binWidth_;
    Count total_ = 0;
};

} // namespace jcache::stats

#endif // JCACHE_STATS_DISTRIBUTION_HH
