/**
 * @file
 * The flag surface every jcache tool shares.
 *
 * Five tools grew four flags independently; this header makes them
 * one vocabulary, spelled and parsed identically everywhere:
 *
 *   --jobs N                    worker threads (0 = auto)
 *   --progress                  progress / run summary on stderr
 *   --json [path]               machine-readable output; no path or
 *                               "-" means stdout
 *   --engine percell|onepass    replay engine selection
 *
 * A tool declares which of the four it accepts and calls
 * parseCommonFlag() first in its flag loop; anything unclaimed falls
 * through to the tool's own flags.  Malformed values (a non-numeric
 * --jobs, an unknown --engine) throw FatalError with the same message
 * regardless of which tool the user typed them at.
 */

#ifndef JCACHE_TOOLS_CLI_COMMON_HH
#define JCACHE_TOOLS_CLI_COMMON_HH

#include <functional>
#include <iosfwd>
#include <string>

#include "sim/engine.hh"

namespace jcache::tools
{

/** Which shared flags a tool (or subcommand) accepts. */
enum CommonFlag : unsigned
{
    kFlagJobs = 1u << 0,
    kFlagProgress = 1u << 1,
    kFlagJson = 1u << 2,
    kFlagEngine = 1u << 3,
};

/** Parsed values of the shared flags. */
struct CommonFlags
{
    /** --jobs: worker threads; 0 selects the automatic default. */
    unsigned jobs = 0;

    /** --progress seen. */
    bool progress = false;

    /** --json seen. */
    bool json = false;

    /** --json's optional path; empty or "-" means stdout. */
    std::string jsonPath;

    /** --engine: replay engine. */
    sim::Engine engine = sim::kDefaultEngine;

    /** Does the --json sink go to stdout (no path, or "-")? */
    bool jsonToStdout() const
    {
        return jsonPath.empty() || jsonPath == "-";
    }
};

/**
 * Try to consume argv[i] (and its value, if any) as one of the
 * `accepted` shared flags.
 *
 * @return true when consumed; `i` is left on the last argv element
 *         used, matching the `for (...; ++i)` loop idiom.
 * @throws FatalError on a malformed value or a missing required one.
 */
bool parseCommonFlag(int argc, char** argv, int& i, unsigned accepted,
                     CommonFlags& out);

/**
 * Usage-string fragment for the accepted shared flags, e.g.
 * "[--jobs N] [--progress] [--json [path]] [--engine percell|onepass]".
 */
std::string commonUsage(unsigned accepted);

/**
 * Invoke `write` on the --json sink: the file named by the flag's
 * path, or stdout when the path is absent or "-".  No-op unless
 * --json was seen.
 *
 * @throws FatalError when the file cannot be opened.
 */
void writeJsonSink(const CommonFlags& flags,
                   const std::function<void(std::ostream&)>& write);

/**
 * Parse a non-negative decimal integer CLI value.
 *
 * @throws FatalError naming `flag` when `value` is not a number.
 */
unsigned parseUnsigned(const std::string& value,
                       const std::string& flag);

} // namespace jcache::tools

#endif // JCACHE_TOOLS_CLI_COMMON_HH
