file(REMOVE_RECURSE
  "CMakeFiles/test_write_cache.dir/test_write_cache.cc.o"
  "CMakeFiles/test_write_cache.dir/test_write_cache.cc.o.d"
  "test_write_cache"
  "test_write_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
