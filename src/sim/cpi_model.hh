/**
 * @file
 * CPI model: turn a replay's event counts into cycles per
 * instruction, the quantity the paper's tradeoffs ultimately serve.
 *
 * The paper argues policies through traffic and miss counts but
 * frames the stakes in CPI terms (Section 3.2: "write buffer stalls
 * should be well under 0.1 CPI"; Section 4: fetch latency is what
 * write-miss policies avoid).  CpiModel composes those pieces:
 *
 *   CPI = 1 (base)
 *       + fetch penalty x line fetches / instr
 *       + store-scheme overhead (Figure 3/4 model)
 *       + write stalls (write buffer or dirty-victim buffer timing)
 *
 * so whole organizations — not just miss counts — can be compared.
 */

#ifndef JCACHE_SIM_CPI_MODEL_HH
#define JCACHE_SIM_CPI_MODEL_HH

#include "core/config.hh"
#include "core/store_pipeline.hh"
#include "core/write_buffer.hh"
#include "sim/run.hh"
#include "trace/trace.hh"

namespace jcache::sim
{

/** Latency parameters of the level below the L1. */
struct CpiParams
{
    /** Cycles to fetch a line from the next level (miss penalty). */
    Cycles fetchPenalty = 12;

    /** Write buffer used by write-through organizations. */
    core::WriteBufferConfig writeBuffer = {4, 16, 6};

    /** Dirty-victim drain time for write-back organizations. */
    Cycles victimDrain = 12;

    /** Dirty-victim buffer entries. */
    unsigned victimBufferEntries = 1;

    /** Store pipelining scheme (Figure 3/4). */
    core::StoreScheme storeScheme =
        core::StoreScheme::WriteThroughDirect;
};

/** CPI decomposition of one organization on one trace. */
struct CpiBreakdown
{
    double base = 1.0;
    double fetchStall = 0.0;    //!< miss fetches
    double storeOverhead = 0.0; //!< pipeline scheme (Figures 3/4)
    double writeStall = 0.0;    //!< write buffer / victim buffer

    double total() const
    {
        return base + fetchStall + storeOverhead + writeStall;
    }
};

/**
 * Evaluate a cache organization's CPI on a trace.
 *
 * Replays the trace twice: once through the cache model for event
 * counts, once through the write-path timing models for stalls.
 */
CpiBreakdown evaluateCpi(const trace::Trace& trace,
                         const core::CacheConfig& config,
                         const CpiParams& params = {});

} // namespace jcache::sim

#endif // JCACHE_SIM_CPI_MODEL_HH
