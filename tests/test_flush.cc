/**
 * @file
 * Unit tests for flush(): the cold-stop vs flush-stop accounting of
 * paper Section 5.
 */

#include <gtest/gtest.h>

#include "core/data_cache.hh"
#include "mem/traffic_meter.hh"

namespace jcache::core
{
namespace
{

CacheConfig
wbConfig()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.lineBytes = 16;
    c.hitPolicy = WriteHitPolicy::WriteBack;
    c.missPolicy = WriteMissPolicy::FetchOnWrite;
    return c;
}

TEST(Flush, DrainsDirtyLinesAsFlushTraffic)
{
    mem::TrafficMeter meter;
    DataCache cache(wbConfig(), meter);
    cache.write(0x000, 4);
    cache.write(0x010, 8);
    cache.read(0x020, 4);
    cache.flush();
    EXPECT_EQ(meter.flushBacks().transactions, 2u);
    EXPECT_EQ(meter.flushBacks().bytes, 12u);
    // Flush traffic is kept apart from execution write-backs.
    EXPECT_EQ(meter.writeBacks().transactions, 0u);
}

TEST(Flush, CountsValidAndDirtyFlushedLines)
{
    mem::TrafficMeter meter;
    DataCache cache(wbConfig(), meter);
    cache.write(0x000, 4);
    cache.read(0x010, 4);
    cache.read(0x020, 4);
    cache.flush();
    const CacheStats& s = cache.stats();
    EXPECT_EQ(s.flushedValidLines, 3u);
    EXPECT_EQ(s.flushedDirtyLines, 1u);
    EXPECT_EQ(s.flushedDirtyBytes, 4u);
}

TEST(Flush, LinesStayValidButClean)
{
    mem::TrafficMeter meter;
    DataCache cache(wbConfig(), meter);
    cache.write(0x000, 4);
    cache.flush();
    EXPECT_TRUE(cache.contains(0x000));
    EXPECT_EQ(cache.dirtyMask(0x000), 0u);
    cache.read(0x000, 4);
    EXPECT_EQ(cache.stats().readHits, 1u);
}

TEST(Flush, SecondFlushIsANoOp)
{
    mem::TrafficMeter meter;
    DataCache cache(wbConfig(), meter);
    cache.write(0x000, 4);
    cache.flush();
    cache.flush();
    EXPECT_EQ(meter.flushBacks().transactions, 1u);
    // flushedValidLines counts both passes' valid lines though; use
    // dirty counters for idempotence checks.
    EXPECT_EQ(cache.stats().flushedDirtyLines, 1u);
}

TEST(Flush, EmptyCacheFlushDoesNothing)
{
    mem::TrafficMeter meter;
    DataCache cache(wbConfig(), meter);
    cache.flush();
    EXPECT_EQ(cache.stats().flushedValidLines, 0u);
    EXPECT_EQ(meter.flushBacks().transactions, 0u);
}

TEST(Flush, ColdStopMissesWriteBackDifference)
{
    // The paper's liver example: with a large cache most written
    // lines never leave during execution; flushing reveals them.
    mem::TrafficMeter meter;
    DataCache cache(wbConfig(), meter);
    for (Addr a = 0; a < 512; a += 4)
        cache.write(a, 4);  // fits: no evictions
    EXPECT_EQ(meter.writeBacks().transactions, 0u);     // cold stop: 0
    cache.flush();
    EXPECT_EQ(meter.flushBacks().transactions, 512u / 16u);
}

TEST(Flush, WriteThroughCacheHasNothingToFlush)
{
    mem::TrafficMeter meter;
    CacheConfig c = wbConfig();
    c.hitPolicy = WriteHitPolicy::WriteThrough;
    DataCache cache(c, meter);
    cache.write(0x000, 4);
    cache.flush();
    EXPECT_EQ(cache.stats().flushedDirtyLines, 0u);
    EXPECT_EQ(meter.flushBacks().transactions, 0u);
    EXPECT_EQ(cache.stats().flushedValidLines, 1u);
}

} // namespace
} // namespace jcache::core
