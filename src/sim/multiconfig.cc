/**
 * @file
 * Implementation of the one-pass multi-configuration engine.
 *
 * The fast-lane replay mirrors DataCache::readPiece / writePiece /
 * evict / flush counter for counter; any change to those must be
 * reflected here (the differential test will catch a divergence).
 *
 * Two replay paths implement those semantics:
 *
 *  - applyPiece() — the scalar reference kernel, one lane at a time.
 *  - replayTileAvx2() — four lanes of one policy group at once: the
 *    tag compare, valid-mask test and hot counter increments run as
 *    256-bit vector operations (tags gathered from the four lanes'
 *    SoA arrays with 64-bit gathers), and any lane that falls off the
 *    all-hit fast path is handed to applyPiece() for that one access.
 *
 * Byte identity between the two is structural: the vector path only
 * ever (a) performs the exact state updates the scalar kernel would
 * and (b) accumulates the same counter increments in a different
 * order, and counter accumulation is integer addition, which is
 * associative and commutative.  tests/test_simd.cc and the engine
 * differential suite verify the equivalence on adversarial traces.
 */

#include "sim/multiconfig.hh"

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/data_cache.hh"
#include "core/geometry.hh"
#include "mem/traffic_meter.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace_writer.hh"
#include "util/bitops.hh"
#include "util/simd.hh"

namespace jcache::sim
{

namespace
{

using core::WriteMissPolicy;

/** Sentinel "no line here" tag; also doubles as the invalid state. */
constexpr Addr kNoTag = ~Addr{0};

/** Accumulated back-side traffic of one class, lane-local. */
struct Traffic
{
    Count txns = 0;
    Count bytes = 0;

    mem::TrafficClass toClass() const
    {
        mem::TrafficClass c;
        c.transactions = txns;
        c.bytes = bytes;
        return c;
    }
};

/** One line-aligned piece of a decoded trace record. */
struct Piece
{
    Addr la;             //!< line address (addr >> lineShift)
    ByteMask mask;       //!< byte mask within the line
    std::uint32_t size;  //!< piece size in bytes
    std::uint32_t read;  //!< 1 = read, 0 = write
};

/**
 * Decode a block of records into line-aligned pieces for one line
 * size.  Shared by every fast lane with that line size.
 */
void
decodeBlock(const trace::TraceRecord* recs, std::size_t n,
            unsigned lineBytes, unsigned lineShift,
            std::vector<Piece>& out)
{
    out.clear();
    const Addr lm = lineBytes - 1;
    for (std::size_t k = 0; k < n; ++k) {
        const trace::TraceRecord& r = recs[k];
        Addr addr = r.addr;
        unsigned size = r.size;
        const std::uint32_t is_read =
            r.type == trace::RefType::Read ? 1 : 0;
        while (true) {
            unsigned off = static_cast<unsigned>(addr & lm);
            unsigned room = lineBytes - off;
            unsigned piece = size < room ? size : room;
            out.push_back(Piece{addr >> lineShift,
                                byteMaskFor(off, piece), piece,
                                is_read});
            size -= piece;
            if (size == 0)
                break;
            addr += piece;
        }
    }
}

/**
 * Counters one lane accumulates over one block, flushed into the
 * lane's persistent stats once per block.  Field names mirror the
 * CacheStats / traffic fields they feed.
 */
struct BlockCounters
{
    Count reads = 0, readHits = 0, readMisses = 0, partial = 0;
    Count writes = 0, writeHits = 0, writeMisses = 0;
    Count fetched = 0, wmFetch = 0, wtCount = 0, inval = 0;
    Count victims = 0, dirtyVictims = 0, dvBytes = 0;
    Count dirtyWrites = 0;
    Count fetchTx = 0, fetchBytes = 0, wtTx = 0, wtBytes = 0;
    Count wbTx = 0, wbBytes = 0;
};

/** Raw SoA state of one fast lane, as the replay kernels see it. */
struct LaneView
{
    Addr* T;                //!< tag per line (kNoTag = empty)
    ByteMask* V;            //!< valid byte mask per line
    ByteMask* D;            //!< dirty byte mask per line
    std::uint64_t im;       //!< set index mask
    ByteMask full;          //!< full-line byte mask
    unsigned lineBytes;     //!< line size in bytes
};

/** Evict the line at `idx` (no-op when empty), as DataCache::evict. */
template <bool WB>
[[gnu::always_inline]] inline void
evictLine(const LaneView& s, BlockCounters& c, std::uint64_t idx)
{
    if (s.T[idx] == kNoTag)
        return;
    ++c.victims;
    if (WB && s.D[idx] != 0) {
        ++c.dirtyVictims;
        unsigned db = popcount(s.D[idx]);
        c.dvBytes += db;
        ++c.wbTx;
        c.wbBytes += db;
        s.D[idx] = 0;
    }
    s.T[idx] = kNoTag;
    s.V[idx] = 0;
}

/**
 * The scalar reference kernel, read half: apply one decoded read
 * piece to one lane.  Reads never consult the write-miss policy, so
 * the vector tiles' read fallback dispatches straight here with no
 * policy switch.
 */
template <bool WB>
[[gnu::always_inline]] inline void
applyRead(const LaneView& s, BlockCounters& c, const Piece& p)
{
    const Addr la = p.la;
    const ByteMask mask = p.mask;
    const std::uint64_t idx = la & s.im;
    Addr* const T = s.T;
    ByteMask* const V = s.V;
    ++c.reads;
    if (T[idx] == la && (V[idx] & mask) == mask) [[likely]] {
        ++c.readHits;
    } else if (T[idx] == la) {
        // Tag hit on invalid bytes: fetch fills the line.
        ++c.readMisses;
        ++c.partial;
        ++c.fetched;
        ++c.fetchTx;
        c.fetchBytes += s.lineBytes;
        V[idx] = s.full;
    } else {
        ++c.readMisses;
        evictLine<WB>(s, c, idx);
        ++c.fetched;
        ++c.fetchTx;
        c.fetchBytes += s.lineBytes;
        T[idx] = la;
        V[idx] = s.full;
        if (WB)
            s.D[idx] = 0;
    }
}

/** The scalar reference kernel, write half. */
template <bool WB, WriteMissPolicy MP>
[[gnu::always_inline]] inline void
applyWrite(const LaneView& s, BlockCounters& c, const Piece& p)
{
    const Addr la = p.la;
    const ByteMask mask = p.mask;
    const std::uint64_t idx = la & s.im;
    Addr* const T = s.T;
    ByteMask* const V = s.V;
    ByteMask* const D = s.D;
    ++c.writes;
    if (T[idx] == la) [[likely]] {
        ++c.writeHits;
        if (WB) {
            if (D[idx] != 0)
                ++c.dirtyWrites;
            D[idx] |= mask;
            V[idx] |= mask;
        } else {
            V[idx] |= mask;
            ++c.wtCount;
            ++c.wtTx;
            c.wtBytes += p.size;
        }
    } else {
        ++c.writeMisses;
        if (MP == WriteMissPolicy::FetchOnWrite) {
            evictLine<WB>(s, c, idx);
            ++c.fetched;
            ++c.wmFetch;
            ++c.fetchTx;
            c.fetchBytes += s.lineBytes;
            T[idx] = la;
            V[idx] = s.full;
            if (WB) {
                D[idx] = mask;
            } else {
                ++c.wtCount;
                ++c.wtTx;
                c.wtBytes += p.size;
            }
        } else if (MP == WriteMissPolicy::WriteValidate) {
            evictLine<WB>(s, c, idx);
            T[idx] = la;
            V[idx] = mask;
            if (WB) {
                D[idx] = mask;
            } else {
                ++c.wtCount;
                ++c.wtTx;
                c.wtBytes += p.size;
            }
        } else if (MP == WriteMissPolicy::WriteAround) {
            ++c.wtCount;
            ++c.wtTx;
            c.wtBytes += p.size;
        } else {  // WriteInvalidate (direct-mapped)
            ++c.wtCount;
            ++c.wtTx;
            c.wtBytes += p.size;
            if (T[idx] != kNoTag) {
                T[idx] = kNoTag;
                V[idx] = 0;
                if (WB)
                    D[idx] = 0;
                ++c.inval;
            }
        }
    }
}

/**
 * The scalar reference kernel: apply one decoded piece to one lane.
 * This is the single source of truth for fast-lane semantics; the
 * vector path delegates every non-fast-path access here.
 */
template <bool WB, WriteMissPolicy MP>
[[gnu::always_inline]] inline void
applyPiece(const LaneView& s, BlockCounters& c, const Piece& p)
{
    if (p.read)
        applyRead<WB>(s, c, p);
    else
        applyWrite<WB, MP>(s, c, p);
}

/**
 * applyWrite with the miss policy chosen at run time.  The vector
 * tiles group lanes by (line size, hit policy) only — the fast paths
 * they retire never consult the miss policy — so when a lane falls
 * off the fast path on a write its miss policy is dispatched here,
 * per access.  Write misses are the minority on every workload, so
 * the switch stays off the hot path.
 */
template <bool WB>
[[gnu::always_inline]] inline void
applyWriteDyn(WriteMissPolicy mp, const LaneView& s, BlockCounters& c,
              const Piece& p)
{
    switch (mp) {
      case WriteMissPolicy::FetchOnWrite:
        applyWrite<WB, WriteMissPolicy::FetchOnWrite>(s, c, p);
        break;
      case WriteMissPolicy::WriteValidate:
        applyWrite<WB, WriteMissPolicy::WriteValidate>(s, c, p);
        break;
      case WriteMissPolicy::WriteAround:
        applyWrite<WB, WriteMissPolicy::WriteAround>(s, c, p);
        break;
      case WriteMissPolicy::WriteInvalidate:
        applyWrite<WB, WriteMissPolicy::WriteInvalidate>(s, c, p);
        break;
    }
}

/**
 * Specialized lane: direct-mapped, byte-granularity valid bits.
 *
 * Structure-of-arrays line state with a sentinel tag, policy choices
 * lifted to template parameters, counters accumulated in
 * BlockCounters and flushed to members once per block.
 */
class FastLane
{
  public:
    explicit FastLane(const core::CacheConfig& c) : config_(c)
    {
        core::CacheGeometry g(c);
        tags_.assign(g.numLines(), kNoTag);
        valid_.assign(g.numLines(), 0);
        dirty_.assign(g.numLines(), 0);
        lineShift_ = 0;
        while ((1u << lineShift_) < c.lineBytes)
            ++lineShift_;
        indexMask_ = g.numSets() - 1;
        fullMask_ = maskBits(c.lineBytes);
    }

    unsigned lineBytes() const { return config_.lineBytes; }
    unsigned lineShift() const { return lineShift_; }

    bool writeBack() const
    {
        return config_.hitPolicy == core::WriteHitPolicy::WriteBack;
    }

    WriteMissPolicy missPolicy() const { return config_.missPolicy; }

    /** This lane's state as the kernels address it. */
    LaneView view()
    {
        return LaneView{tags_.data(), valid_.data(), dirty_.data(),
                        indexMask_, fullMask_, config_.lineBytes};
    }

    /** Fold one block's counters into the persistent stats. */
    void absorb(const BlockCounters& c)
    {
        stats_.reads += c.reads;
        stats_.readHits += c.readHits;
        stats_.readMisses += c.readMisses;
        stats_.partialValidReadMisses += c.partial;
        stats_.writes += c.writes;
        stats_.writeHits += c.writeHits;
        stats_.writeMisses += c.writeMisses;
        stats_.linesFetched += c.fetched;
        stats_.writeMissFetches += c.wmFetch;
        stats_.writeThroughs += c.wtCount;
        stats_.invalidations += c.inval;
        stats_.victims += c.victims;
        stats_.dirtyVictims += c.dirtyVictims;
        stats_.dirtyVictimDirtyBytes += c.dvBytes;
        stats_.writesToDirtyLines += c.dirtyWrites;
        fetch_.txns += c.fetchTx;
        fetch_.bytes += c.fetchBytes;
        wt_.txns += c.wtTx;
        wt_.bytes += c.wtBytes;
        wb_.txns += c.wbTx;
        wb_.bytes += c.wbBytes;
    }

    /** Replay one decoded block through this lane, scalar. */
    template <bool WB, WriteMissPolicy MP>
    void replayScalar(const Piece* P, std::size_t n)
    {
        const LaneView s = view();
        BlockCounters c;
        for (std::size_t k = 0; k < n; ++k)
            applyPiece<WB, MP>(s, c, P[k]);
        absorb(c);
    }

    /**
     * Drain dirty lines, mirroring DataCache::flush(): every valid
     * line counts as flushed; dirty ones write their dirty bytes as
     * flush traffic and become clean but stay valid.
     */
    void flush()
    {
        const bool wb = writeBack();
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] == kNoTag)
                continue;
            ++stats_.flushedValidLines;
            if (wb && dirty_[i] != 0) {
                ++stats_.flushedDirtyLines;
                unsigned dirty_bytes = popcount(dirty_[i]);
                stats_.flushedDirtyBytes += dirty_bytes;
                ++flush_.txns;
                flush_.bytes += dirty_bytes;
                dirty_[i] = 0;
            }
        }
    }

    RunResult result(Count instructions) const
    {
        RunResult r;
        r.config = config_;
        r.cache = stats_;
        r.fetchTraffic = fetch_.toClass();
        r.writeThroughTraffic = wt_.toClass();
        r.writeBackTraffic = wb_.toClass();
        r.flushTraffic = flush_.toClass();
        r.instructions = instructions;
        return r;
    }

  private:
    core::CacheConfig config_;
    std::vector<Addr> tags_;
    std::vector<ByteMask> valid_;
    std::vector<ByteMask> dirty_;
    unsigned lineShift_;
    std::uint64_t indexMask_;
    ByteMask fullMask_;
    core::CacheStats stats_;
    Traffic fetch_, wt_, wb_, flush_;
};

#if JCACHE_SIMD_AVX2

/** Store a 64-bit-per-lane vector into a 32-byte-aligned array. */
JCACHE_TARGET_AVX2 inline void
storeLanes(std::uint64_t out[4], __m256i v)
{
    _mm256_store_si256(reinterpret_cast<__m256i*>(out), v);
}

/** A pointer as a 64-bit gather "index" (absolute address, scale 1). */
inline long long
gatherAddr(const void* p)
{
    return static_cast<long long>(reinterpret_cast<std::uintptr_t>(p));
}

/**
 * Replay one decoded block through NV×4 lanes of one hit-policy
 * group at once (NV = 1 or 2 vectors of four lanes; the wider tile
 * shares each piece's load, read/write branch and broadcasts across
 * eight lanes).
 *
 * Per piece, each vector's four tags (and, when needed, valid and
 * dirty masks) are fetched with one 64-bit gather, using absolute
 * addresses as gather indices so the lanes may have different array
 * bases and different index masks (different cache sizes).  Lanes on
 * the common fast paths — a full read hit, or a write tag hit — are
 * retired entirely with vector compare/accumulate (plus a scalar
 * mask store for write hits); each remaining lane falls back to the
 * scalar reference kernel for that one access, with its own miss
 * policy dispatched at run time (the fast paths never consult it).
 * Counters meet in BlockCounters either way, so regrouping cannot
 * change results.
 *
 * The fast paths increment several counters by the same amount — a
 * full read hit bumps reads and readHits together; a write-through
 * tag hit bumps writes, writeHits, writeThroughs and write-through
 * transactions together — so each path keeps one accumulator vector
 * and fans it out into BlockCounters once per block.
 */
template <bool WB, unsigned NV>
JCACHE_TARGET_AVX2 void
replayTileAvx2(FastLane* const* lanes, const Piece* P, std::size_t n)
{
    constexpr unsigned NL = NV * 4;
    LaneView s[NL];
    BlockCounters c[NL];
    WriteMissPolicy mp[NL];
    for (unsigned i = 0; i < NL; ++i) {
        s[i] = lanes[i]->view();
        mp[i] = lanes[i]->missPolicy();
    }

    const auto* base0 = static_cast<const long long*>(nullptr);
    __m256i tbase[NV], vbase[NV], dbase[NV], im_v[NV];
    for (unsigned v = 0; v < NV; ++v) {
        const LaneView* q = s + 4 * v;
        tbase[v] = _mm256_set_epi64x(
            gatherAddr(q[3].T), gatherAddr(q[2].T),
            gatherAddr(q[1].T), gatherAddr(q[0].T));
        vbase[v] = _mm256_set_epi64x(
            gatherAddr(q[3].V), gatherAddr(q[2].V),
            gatherAddr(q[1].V), gatherAddr(q[0].V));
        dbase[v] = _mm256_set_epi64x(
            gatherAddr(q[3].D), gatherAddr(q[2].D),
            gatherAddr(q[1].D), gatherAddr(q[0].D));
        im_v[v] = _mm256_set_epi64x(
            static_cast<long long>(q[3].im),
            static_cast<long long>(q[2].im),
            static_cast<long long>(q[1].im),
            static_cast<long long>(q[0].im));
    }
    const __m256i ones = _mm256_set1_epi64x(1);
    const __m256i zero = _mm256_setzero_si256();

    // One accumulator per fast path (see the function comment), plus
    // the path-specific extra: dirty-write hits (WB) or the summed
    // write-through bytes (WT).
    __m256i read_full_v[NV], write_hit_v[NV], extra_v[NV];
    for (unsigned v = 0; v < NV; ++v)
        read_full_v[v] = write_hit_v[v] = extra_v[v] = zero;

    // Single-entry line cache over the gathered state.  A read that
    // fully hits every lane changes no state, so while consecutive
    // reads stay on one line address the gathered tag/valid vectors
    // are still exact and the gathers (and index math) can be
    // skipped — the common case for stride-1 walks, where every line
    // is read piece by piece.  Any write or any scalar fallback may
    // mutate lane state, so either invalidates the entry.
    Addr cached_la = 0;
    bool cache_ok = false;
    __m256i cached_hit[NV], cached_valid[NV];
    for (unsigned v = 0; v < NV; ++v)
        cached_hit[v] = cached_valid[v] = zero;

    for (std::size_t k = 0; k < n; ++k) {
        const Piece p = P[k];

        if (p.read && cache_ok && p.la == cached_la) {
            const __m256i m_v =
                _mm256_set1_epi64x(static_cast<long long>(p.mask));
            for (unsigned v = 0; v < NV; ++v) {
                const __m256i vok = _mm256_cmpeq_epi64(
                    _mm256_and_si256(cached_valid[v], m_v), m_v);
                const __m256i full_hit =
                    _mm256_and_si256(cached_hit[v], vok);
                const int fm = _mm256_movemask_pd(
                    _mm256_castsi256_pd(full_hit));
                read_full_v[v] = _mm256_add_epi64(
                    read_full_v[v], _mm256_and_si256(full_hit, ones));
                if (fm != 0xf) {
                    cache_ok = false;
                    for (unsigned i = 0; i < 4; ++i)
                        if (!(fm & (1u << i)))
                            applyRead<WB>(s[4 * v + i], c[4 * v + i],
                                          p);
                }
            }
            continue;
        }

        const __m256i la_v =
            _mm256_set1_epi64x(static_cast<long long>(p.la));
        __m256i idx[NV], bofs[NV], tag_hit[NV];
        int hm[NV];
        for (unsigned v = 0; v < NV; ++v) {
            idx[v] = _mm256_and_si256(la_v, im_v[v]);
            bofs[v] = _mm256_slli_epi64(idx[v], 3);
            const __m256i tags = _mm256_i64gather_epi64(
                base0, _mm256_add_epi64(tbase[v], bofs[v]), 1);
            tag_hit[v] = _mm256_cmpeq_epi64(tags, la_v);
            hm[v] =
                _mm256_movemask_pd(_mm256_castsi256_pd(tag_hit[v]));
        }

        if (p.read) {
            const __m256i m_v =
                _mm256_set1_epi64x(static_cast<long long>(p.mask));
            bool all_full = true;
            for (unsigned v = 0; v < NV; ++v) {
                int fm = 0;
                if (hm[v] != 0) {
                    const __m256i valid = _mm256_i64gather_epi64(
                        base0, _mm256_add_epi64(vbase[v], bofs[v]),
                        1);
                    cached_hit[v] = tag_hit[v];
                    cached_valid[v] = valid;
                    const __m256i vok = _mm256_cmpeq_epi64(
                        _mm256_and_si256(valid, m_v), m_v);
                    const __m256i full_hit =
                        _mm256_and_si256(tag_hit[v], vok);
                    fm = _mm256_movemask_pd(
                        _mm256_castsi256_pd(full_hit));
                    read_full_v[v] = _mm256_add_epi64(
                        read_full_v[v],
                        _mm256_and_si256(full_hit, ones));
                }
                if (fm != 0xf) {
                    all_full = false;
                    for (unsigned i = 0; i < 4; ++i)
                        if (!(fm & (1u << i)))
                            applyRead<WB>(s[4 * v + i], c[4 * v + i],
                                          p);
                }
            }
            cached_la = p.la;
            cache_ok = all_full;
        } else {
            cache_ok = false;
            for (unsigned v = 0; v < NV; ++v) {
                if (hm[v] != 0) {
                    write_hit_v[v] = _mm256_add_epi64(
                        write_hit_v[v],
                        _mm256_and_si256(tag_hit[v], ones));
                    alignas(32) std::uint64_t idxs[4];
                    storeLanes(idxs, idx[v]);
                    // Branchless mask update: per lane, OR in the
                    // piece mask gated by that lane's hit mask
                    // (all-ones or zero) — OR-ing zero into the
                    // line a missing lane indexes is a no-op.
                    alignas(32) std::uint64_t gate[4];
                    storeLanes(gate, tag_hit[v]);
                    if (WB) {
                        const __m256i dirty = _mm256_i64gather_epi64(
                            base0,
                            _mm256_add_epi64(dbase[v], bofs[v]), 1);
                        const __m256i dz =
                            _mm256_cmpeq_epi64(dirty, zero);
                        const __m256i dirty_hit =
                            _mm256_andnot_si256(dz, tag_hit[v]);
                        extra_v[v] = _mm256_add_epi64(
                            extra_v[v],
                            _mm256_and_si256(dirty_hit, ones));
                        for (unsigned i = 0; i < 4; ++i) {
                            const ByteMask gm = p.mask & gate[i];
                            s[4 * v + i].D[idxs[i]] |= gm;
                            s[4 * v + i].V[idxs[i]] |= gm;
                        }
                    } else {
                        extra_v[v] = _mm256_add_epi64(
                            extra_v[v],
                            _mm256_and_si256(
                                tag_hit[v],
                                _mm256_set1_epi64x(
                                    static_cast<long long>(p.size))));
                        for (unsigned i = 0; i < 4; ++i)
                            s[4 * v + i].V[idxs[i]] |=
                                p.mask & gate[i];
                    }
                }
                if (hm[v] != 0xf) {
                    for (unsigned i = 0; i < 4; ++i)
                        if (!(hm[v] & (1u << i)))
                            applyWriteDyn<WB>(mp[4 * v + i],
                                              s[4 * v + i],
                                              c[4 * v + i], p);
                }
            }
        }
    }

    alignas(32) std::uint64_t t[4];
    for (unsigned v = 0; v < NV; ++v) {
        BlockCounters* cv = c + 4 * v;
        storeLanes(t, read_full_v[v]);
        for (unsigned i = 0; i < 4; ++i) {
            cv[i].reads += t[i];
            cv[i].readHits += t[i];
        }
        storeLanes(t, write_hit_v[v]);
        for (unsigned i = 0; i < 4; ++i) {
            cv[i].writes += t[i];
            cv[i].writeHits += t[i];
            if (!WB) {
                cv[i].wtCount += t[i];
                cv[i].wtTx += t[i];
            }
        }
        storeLanes(t, extra_v[v]);
        for (unsigned i = 0; i < 4; ++i) {
            if (WB)
                cv[i].dirtyWrites += t[i];
            else
                cv[i].wtBytes += t[i];
        }
    }
    for (unsigned i = 0; i < NL; ++i)
        lanes[i]->absorb(c[i]);
}

#endif // JCACHE_SIMD_AVX2

/** One lane's scalar block replay, miss policy chosen once here. */
template <bool WB>
void
replayScalarLane(FastLane* lane, const Piece* P, std::size_t n)
{
    switch (lane->missPolicy()) {
      case WriteMissPolicy::FetchOnWrite:
        lane->replayScalar<WB, WriteMissPolicy::FetchOnWrite>(P, n);
        break;
      case WriteMissPolicy::WriteValidate:
        lane->replayScalar<WB, WriteMissPolicy::WriteValidate>(P, n);
        break;
      case WriteMissPolicy::WriteAround:
        lane->replayScalar<WB, WriteMissPolicy::WriteAround>(P, n);
        break;
      case WriteMissPolicy::WriteInvalidate:
        lane->replayScalar<WB, WriteMissPolicy::WriteInvalidate>(P, n);
        break;
    }
}

/**
 * Replay one decoded block through every lane of one hit-policy
 * group: vector tiles of four lanes when AVX2 is available, the
 * scalar kernel for the remainder (and for everything when it is
 * not).
 */
template <bool WB>
void
replayGroupT(const std::vector<FastLane*>& lanes, const Piece* P,
             std::size_t n)
{
    std::size_t i = 0;
#if JCACHE_SIMD_AVX2
    if (simd::avx2Enabled()) {
        for (; i + simd::kLanesPerVector <= lanes.size();
             i += simd::kLanesPerVector)
            replayTileAvx2<WB, 1>(&lanes[i], P, n);
    }
#endif
    for (; i < lanes.size(); ++i)
        replayScalarLane<WB>(lanes[i], P, n);
}

/** Dispatch one hit-policy group's block replay to its template. */
void
replayGroup(bool wb, const std::vector<FastLane*>& lanes,
            const Piece* P, std::size_t n)
{
    wb ? replayGroupT<true>(lanes, P, n)
       : replayGroupT<false>(lanes, P, n);
}

/**
 * Fallback lane: the reference DataCache behind a terminal traffic
 * meter.  Handles assoc > 1 and coarse valid-bit granularities.
 */
class GenericLane
{
  public:
    explicit GenericLane(const core::CacheConfig& c)
        : meter_(nullptr), cache_(c, meter_)
    {
    }

    void replay(const trace::TraceRecord* recs, std::size_t n)
    {
        for (std::size_t k = 0; k < n; ++k)
            cache_.access(recs[k]);
    }

    void flush() { cache_.flush(); }

    RunResult result(Count instructions) const
    {
        RunResult r;
        r.config = cache_.config();
        r.cache = cache_.stats();
        r.fetchTraffic = meter_.fetches();
        r.writeThroughTraffic = meter_.writeThroughs();
        r.writeBackTraffic = meter_.writeBacks();
        r.flushTraffic = meter_.flushBacks();
        r.instructions = instructions;
        return r;
    }

  private:
    mem::TrafficMeter meter_;
    core::DataCache cache_;
};

/** Fast lanes sharing one line size, split by hit policy. */
struct DecodeGroup
{
    unsigned lineShift = 0;
    std::vector<Piece> pieces;

    /** Write-back lanes and write-through lanes, tiled separately. */
    std::vector<FastLane*> wbLanes;
    std::vector<FastLane*> wtLanes;

    void add(FastLane* lane)
    {
        (lane->writeBack() ? wbLanes : wtLanes).push_back(lane);
    }
};

} // namespace

bool
fastLaneEligible(const core::CacheConfig& config)
{
    return config.assoc == 1 && config.validGranularity == 1;
}

std::vector<RunResult>
runTracePass(const trace::ReplaySource& source,
             const std::vector<LaneSpec>& lanes,
             std::size_t blockRecords)
{
    telemetry::Span span("sweep.trace_pass", "sim");
    span.arg("trace", source.name());
    span.arg("lanes", std::to_string(lanes.size()));

    struct Slot
    {
        std::unique_ptr<FastLane> fast;
        std::unique_ptr<GenericLane> generic;
        bool flushAtEnd = false;
    };
    std::vector<Slot> slots(lanes.size());

    // Fast lanes sharing a line size share one decode of each block;
    // within a line size, lanes of one hit policy replay together so
    // the vector tiles agree on what a write hit does (the miss
    // policy is per-lane, consulted only off the fast path).
    std::map<unsigned, DecodeGroup> groups;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i].config.validate();
        slots[i].flushAtEnd = lanes[i].flushAtEnd;
        if (fastLaneEligible(lanes[i].config)) {
            slots[i].fast =
                std::make_unique<FastLane>(lanes[i].config);
            DecodeGroup& group = groups[lanes[i].config.lineBytes];
            group.lineShift = slots[i].fast->lineShift();
            group.pieces.reserve(blockRecords == 0 ? 2
                                                   : blockRecords * 2);
            group.add(slots[i].fast.get());
        } else {
            slots[i].generic =
                std::make_unique<GenericLane>(lanes[i].config);
        }
    }

    Count instructions = 0;
    Count block_count = 0;
    std::unique_ptr<trace::BlockCursor> cursor =
        source.blocks(blockRecords);
    trace::TraceBlock block;
    while (cursor->next(block)) {
        ++block_count;
        for (std::size_t k = 0; k < block.count; ++k)
            instructions += block.records[k].instrDelta;
        auto decodeAll = [&] {
            for (auto& [line_bytes, group] : groups)
                decodeBlock(block.records, block.count, line_bytes,
                            group.lineShift, group.pieces);
        };
        if (telemetry::tracing()) {
            telemetry::Span decode("sweep.block_decode", "sim");
            decode.arg("records", std::to_string(block.count));
            decode.arg("line_sizes", std::to_string(groups.size()));
            decodeAll();
        } else {
            decodeAll();
        }
        for (auto& [line_bytes, group] : groups) {
            if (!group.wbLanes.empty())
                replayGroup(true, group.wbLanes, group.pieces.data(),
                            group.pieces.size());
            if (!group.wtLanes.empty())
                replayGroup(false, group.wtLanes, group.pieces.data(),
                            group.pieces.size());
        }
        for (Slot& slot : slots)
            if (slot.generic)
                slot.generic->replay(block.records, block.count);
    }

    std::vector<RunResult> results;
    results.reserve(lanes.size());
    for (Slot& slot : slots) {
        if (slot.fast) {
            if (slot.flushAtEnd)
                slot.fast->flush();
            results.push_back(slot.fast->result(instructions));
        } else {
            if (slot.flushAtEnd)
                slot.generic->flush();
            results.push_back(slot.generic->result(instructions));
        }
    }

    if (telemetry::armed()) {
        auto& reg = telemetry::Registry::instance();
        static telemetry::Counter& records = reg.counter(
            "jcache_engine_records_total",
            "Trace records decoded by the one-pass engine");
        static telemetry::Counter& blocks = reg.counter(
            "jcache_engine_blocks_total",
            "Trace blocks walked by the one-pass engine");
        records.inc(source.records());
        blocks.inc(block_count);
    }
    return results;
}

std::vector<RunResult>
runTracePass(const trace::Trace& trace,
             const std::vector<LaneSpec>& lanes,
             std::size_t blockRecords)
{
    trace::TraceReplaySource source(trace);
    return runTracePass(static_cast<const trace::ReplaySource&>(source),
                        lanes, blockRecords);
}

} // namespace jcache::sim
