/**
 * @file
 * Per-line state: tag plus per-byte valid and dirty masks.
 *
 * The paper's analyses need byte granularity in two places: the
 * write-validate policy keeps sub-line valid bits (Section 4), and
 * Section 5.2 measures how many bytes of a dirty victim are actually
 * dirty.  Lines are at most 64 bytes, so one 64-bit mask each suffices.
 */

#ifndef JCACHE_CORE_LINE_HH
#define JCACHE_CORE_LINE_HH

#include "util/bitops.hh"
#include "util/types.hh"

namespace jcache::core
{

/**
 * State of one cache line (no data payload: the simulator is
 * trace-driven, so only metadata matters).
 */
struct CacheLine
{
    /** Tag of the cached address; meaningful only if valid != 0. */
    Addr tag = 0;

    /** Per-byte valid bits; 0 means the line is empty/invalid. */
    ByteMask valid = 0;

    /** Per-byte dirty bits (subset of valid); write-back caches only. */
    ByteMask dirty = 0;

    /** LRU timestamp: the access sequence number of the last touch. */
    Count lastUse = 0;

    /** FIFO timestamp: the access sequence number at installation. */
    Count insertedAt = 0;

    bool isValid() const { return valid != 0; }
    bool isDirty() const { return dirty != 0; }

    /** Number of dirty bytes in the line. */
    unsigned dirtyBytes() const { return popcount(dirty); }

    /** Are all bytes covered by `mask` valid? */
    bool covers(ByteMask mask) const { return (valid & mask) == mask; }

    /** Drop all state. */
    void invalidate()
    {
        valid = 0;
        dirty = 0;
    }
};

} // namespace jcache::core

#endif // JCACHE_CORE_LINE_HH
