/**
 * @file
 * Implementation of the miniature compiler workload.
 *
 * Pipeline per function:
 *   1. lex:      raw source words -> (kind, value) token records
 *   2. parse:    tokens -> AST node pool (operator-precedence stack)
 *   3. fold:     constant subtrees rewritten in place
 *   4. codegen:  AST -> three-address instruction buffer
 *
 * All pools live in traced memory and are reused across functions, so
 * the footprint is the per-function working set times one, while the
 * trace length grows with the function count.
 */

#include "workloads/ccom.hh"

#include <random>

#include "workloads/traced_memory.hh"

namespace jcache::workloads
{

namespace
{

using I32 = TracedArray<std::int32_t>;

// Token kinds.
constexpr std::int32_t kTokNum = 0;
constexpr std::int32_t kTokVar = 1;
constexpr std::int32_t kTokOp = 2;     // value: 0 '+', 1 '-', 2 '*'
constexpr std::int32_t kTokLParen = 3;
constexpr std::int32_t kTokRParen = 4;
constexpr std::int32_t kTokEnd = 5;

// AST node layout: 4 int32 fields per node.
constexpr unsigned kNodeFields = 4;
constexpr unsigned kFKind = 0;   // 0 num, 1 var, 2 binop
constexpr unsigned kFValue = 1;  // literal / var id / op code
constexpr unsigned kFLhs = 2;
constexpr unsigned kFRhs = 3;

/** Operator-precedence (0 lowest). */
int
precedence(std::int32_t op)
{
    return op == 2 ? 1 : 0;
}

/**
 * State for compiling one function; pools are owned by the caller and
 * reused.
 */
struct Compiler
{
    trace::TraceRecorder& rec;
    I32& source;    //!< raw "source" word stream
    I32& tokens;    //!< lexed (kind, value) pairs
    I32& nodes;     //!< AST node pool
    I32& code;      //!< emitted instructions (op, a, b, dest)
    I32& stack;     //!< parser value/operator stack
    std::mt19937_64& rng;

    unsigned sourceLen = 0;
    unsigned tokenCount = 0;
    unsigned nodeCount = 0;
    unsigned codeCount = 0;

    /** Emit one random expression into the raw source stream. */
    void
    genSource(unsigned target_tokens)
    {
        std::uniform_int_distribution<int> pick(0, 99);
        unsigned depth = 0;
        bool want_operand = true;
        unsigned i = 0;
        // Two source words per token: kind then value, as a character
        // stream stand-in.  Untraced pokes: the source buffer is
        // filled by the I/O system, not by the program's own stores.
        auto put = [&](std::int32_t kind, std::int32_t value) {
            source.poke(i * 2, kind);
            source.poke(i * 2 + 1, value);
            ++i;
        };
        while (i < target_tokens - 2) {
            if (want_operand) {
                int r = pick(rng);
                if (r < 20 && depth < 8) {
                    put(kTokLParen, 0);
                    ++depth;
                } else if (r < 65) {
                    put(kTokNum, pick(rng));
                    want_operand = false;
                } else {
                    put(kTokVar, pick(rng) % 32);
                    want_operand = false;
                }
            } else {
                int r = pick(rng);
                if (r < 25 && depth > 0) {
                    put(kTokRParen, 0);
                    --depth;
                } else {
                    put(kTokOp, r % 3);
                    want_operand = true;
                }
            }
        }
        if (want_operand)
            put(kTokNum, 7);
        while (depth > 0) {
            put(kTokRParen, 0);
            --depth;
        }
        put(kTokEnd, 0);
        sourceLen = i;
    }

    /** Pass 1: read source words, write token records. */
    void
    lex()
    {
        tokenCount = 0;
        for (unsigned i = 0; i < sourceLen; ++i) {
            std::int32_t kind = source.get(i * 2);
            std::int32_t value = source.get(i * 2 + 1);
            tokens.set(tokenCount * 2, kind);
            tokens.set(tokenCount * 2 + 1, value);
            ++tokenCount;
            rec.tick(3);
        }
    }

    std::int32_t
    newNode(std::int32_t kind, std::int32_t value, std::int32_t lhs,
            std::int32_t rhs)
    {
        auto id = static_cast<std::int32_t>(nodeCount++);
        std::size_t base =
            static_cast<std::size_t>(id) * kNodeFields;
        nodes.set(base + kFKind, kind);
        nodes.set(base + kFValue, value);
        nodes.set(base + kFLhs, lhs);
        nodes.set(base + kFRhs, rhs);
        rec.tick(2);
        return id;
    }

    /**
     * Pass 2: operator-precedence parse reading token records and
     * writing AST nodes; the explicit stack lives in traced memory
     * like a real parser's.
     */
    std::int32_t
    parse()
    {
        nodeCount = 0;
        unsigned sp = 0;      // operand stack pointer (node ids)
        unsigned osp = 0;     // operator stack pointer
        // Operand stack occupies stack[0..256); operators [256..512).
        auto push_val = [&](std::int32_t id) {
            stack.set(sp++, id);
            rec.tick(1);
        };
        auto pop_val = [&]() {
            rec.tick(1);
            return stack.get(--sp);
        };
        auto push_op = [&](std::int32_t op) {
            stack.set(256 + osp++, op);
            rec.tick(1);
        };
        auto pop_op = [&]() {
            rec.tick(1);
            return stack.get(256 + --osp);
        };
        auto reduce = [&]() {
            std::int32_t op = pop_op();
            std::int32_t rhs = pop_val();
            std::int32_t lhs = pop_val();
            push_val(newNode(2, op, lhs, rhs));
        };

        constexpr std::int32_t kOpLParen = 100;
        for (unsigned i = 0; i < tokenCount; ++i) {
            std::int32_t kind = tokens.get(i * 2);
            std::int32_t value = tokens.get(i * 2 + 1);
            rec.tick(2);
            switch (kind) {
              case kTokNum:
                push_val(newNode(0, value, -1, -1));
                break;
              case kTokVar:
                push_val(newNode(1, value, -1, -1));
                break;
              case kTokLParen:
                push_op(kOpLParen);
                break;
              case kTokRParen:
                while (osp > 0 && stack.get(256 + osp - 1) !=
                       kOpLParen) {
                    reduce();
                }
                if (osp > 0)
                    pop_op();  // discard '('
                break;
              case kTokOp:
                while (osp > 0) {
                    std::int32_t top = stack.get(256 + osp - 1);
                    rec.tick(1);
                    if (top == kOpLParen ||
                        precedence(top) < precedence(value)) {
                        break;
                    }
                    reduce();
                }
                push_op(value);
                break;
              case kTokEnd:
              default:
                break;
            }
        }
        while (osp > 0)
            reduce();
        return sp > 0 ? pop_val() : -1;
    }

    /** Pass 3: fold constant subtrees in place (read + rewrite). */
    bool
    fold(std::int32_t id)
    {
        if (id < 0)
            return false;
        std::size_t base = static_cast<std::size_t>(id) * kNodeFields;
        std::int32_t kind = nodes.get(base + kFKind);
        rec.tick(1);
        if (kind == 0)
            return true;   // literal
        if (kind == 1)
            return false;  // variable
        std::int32_t lhs = nodes.get(base + kFLhs);
        std::int32_t rhs = nodes.get(base + kFRhs);
        bool lconst = fold(lhs);
        bool rconst = fold(rhs);
        if (!(lconst && rconst))
            return false;
        std::int32_t op = nodes.get(base + kFValue);
        std::int32_t a = nodes.get(
            static_cast<std::size_t>(lhs) * kNodeFields + kFValue);
        std::int32_t b = nodes.get(
            static_cast<std::size_t>(rhs) * kNodeFields + kFValue);
        std::int32_t result = op == 0 ? a + b
                            : op == 1 ? a - b
                                      : a * b;
        nodes.set(base + kFKind, 0);
        nodes.set(base + kFValue, result);
        rec.tick(4);
        return true;
    }

    /**
     * Pass 3.5: semantic check — a read-only walk computing each
     * subtree's "type" (here: whether it involves a variable), as a
     * compiler's type checker would.
     */
    std::int32_t
    typecheck(std::int32_t id)
    {
        if (id < 0)
            return 0;
        std::size_t base = static_cast<std::size_t>(id) * kNodeFields;
        std::int32_t kind = nodes.get(base + kFKind);
        rec.tick(2);
        if (kind == 0)
            return 0;
        if (kind == 1)
            return 1;
        std::int32_t lt = typecheck(nodes.get(base + kFLhs));
        std::int32_t rt = typecheck(nodes.get(base + kFRhs));
        rec.tick(2);
        return lt | rt;
    }

    /** Pass 4: post-order codegen into the instruction buffer. */
    std::int32_t
    codegen(std::int32_t id, std::int32_t& next_reg)
    {
        std::size_t base = static_cast<std::size_t>(id) * kNodeFields;
        std::int32_t kind = nodes.get(base + kFKind);
        std::int32_t value = nodes.get(base + kFValue);
        rec.tick(2);
        std::int32_t dest = next_reg++;
        if (kind == 2) {
            std::int32_t ra =
                codegen(nodes.get(base + kFLhs), next_reg);
            std::int32_t rb =
                codegen(nodes.get(base + kFRhs), next_reg);
            std::size_t c =
                static_cast<std::size_t>(codeCount++) * 4;
            code.set(c + 0, value);  // opcode
            code.set(c + 1, ra);
            code.set(c + 2, rb);
            code.set(c + 3, dest);
            rec.tick(2);
        } else {
            std::size_t c =
                static_cast<std::size_t>(codeCount++) * 4;
            code.set(c + 0, kind == 0 ? 10 : 11);  // li / lvar
            code.set(c + 1, value);
            code.set(c + 2, 0);
            code.set(c + 3, dest);
            rec.tick(2);
        }
        return dest;
    }
};

} // namespace

void
CcomWorkload::run(trace::TraceRecorder& rec) const
{
    TracedMemory mem(rec);

    // Pools sized for the largest function and reused across
    // functions, like a compiler's arena between compilations.
    constexpr unsigned kMaxTokens = 1600;
    I32 source(mem, kMaxTokens * 2);
    I32 tokens(mem, kMaxTokens * 2);
    I32 nodes(mem, kMaxTokens * kNodeFields);
    I32 code(mem, kMaxTokens * 4);
    I32 stack(mem, 512);

    std::mt19937_64 rng(config_.seed);
    std::uniform_int_distribution<unsigned> size_dist(150, 1500);

    unsigned functions = functions_ * config_.scale;
    Compiler compiler{rec, source, tokens, nodes, code, stack, rng};

    for (unsigned f = 0; f < functions; ++f) {
        unsigned target = size_dist(rng);
        compiler.genSource(target);
        compiler.lex();
        std::int32_t root = compiler.parse();
        compiler.typecheck(root);
        compiler.fold(root);
        std::int32_t next_reg = 0;
        compiler.codeCount = 0;
        if (root >= 0)
            compiler.codegen(root, next_reg);
        rec.tick(20);  // per-function bookkeeping
    }
}

} // namespace jcache::workloads
