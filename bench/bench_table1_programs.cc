/**
 * @file
 * Reproduces Table 1: test program characteristics — dynamic
 * instructions, data reads, data writes, total references — for the
 * six reconstructed benchmarks.
 */

#include <iostream>

#include "sim/experiments.hh"
#include "stats/table.hh"

int
main()
{
    using namespace jcache;

    const auto& traces = sim::TraceSet::standard();
    auto rows = sim::table1Characteristics(traces);

    stats::TextTable table(
        "Table 1: test program characteristics (reconstructed "
        "workloads)");
    table.setHeader({"program", "dyn. instr", "data reads",
                     "data writes", "total refs", "ld/st", "refs/instr"});

    trace::TraceSummary total;
    for (const auto& [name, summary] : rows) {
        table.addRow({name, std::to_string(summary.instructions),
                      std::to_string(summary.reads),
                      std::to_string(summary.writes),
                      std::to_string(summary.references()),
                      stats::formatFixed(summary.loadStoreRatio(), 2),
                      stats::formatFixed(summary.refsPerInstruction(),
                                         2)});
        total.instructions += summary.instructions;
        total.reads += summary.reads;
        total.writes += summary.writes;
    }
    table.addSeparator();
    table.addRow({"total", std::to_string(total.instructions),
                  std::to_string(total.reads),
                  std::to_string(total.writes),
                  std::to_string(total.references()),
                  stats::formatFixed(total.loadStoreRatio(), 2),
                  stats::formatFixed(total.refsPerInstruction(), 2)});
    table.print(std::cout);

    std::cout << "\nPaper (Table 1): 484.5M instr, 132.8M reads, "
                 "54.8M writes; loads:stores ~2.4:1.\n"
                 "Reconstructed workloads are ~10-100x shorter by "
                 "design; ratios are the comparable quantity.\n";
    return 0;
}
