# Empty dependencies file for test_alloc_and_granularity.
# This may be replaced when dependencies are built.
