file(REMOVE_RECURSE
  "CMakeFiles/test_data_cache_basic.dir/test_data_cache_basic.cc.o"
  "CMakeFiles/test_data_cache_basic.dir/test_data_cache_basic.cc.o.d"
  "test_data_cache_basic"
  "test_data_cache_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_cache_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
