/**
 * @file
 * Implementation of the shared tool flag surface.
 */

#include "cli_common.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "util/logging.hh"

namespace jcache::tools
{

unsigned
parseUnsigned(const std::string& value, const std::string& flag)
{
    char* end = nullptr;
    unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
    fatalIf(value.empty() || end == nullptr || *end != '\0',
            flag + " expects a non-negative integer, got '" + value +
                "'");
    return static_cast<unsigned>(parsed);
}

bool
parseCommonFlag(int argc, char** argv, int& i, unsigned accepted,
                CommonFlags& out)
{
    const std::string flag = argv[i];

    if ((accepted & kFlagProgress) && flag == "--progress") {
        out.progress = true;
        return true;
    }
    if ((accepted & kFlagJson) && flag == "--json") {
        out.json = true;
        out.jsonPath.clear();
        // The path is optional: the next element is taken as one
        // unless it looks like another flag.
        if (i + 1 < argc && argv[i + 1][0] != '-')
            out.jsonPath = argv[++i];
        else if (i + 1 < argc && std::string(argv[i + 1]) == "-")
            ++i;  // explicit stdout
        return true;
    }
    if ((accepted & kFlagJobs) && flag == "--jobs") {
        fatalIf(i + 1 >= argc, "--jobs expects a value");
        out.jobs = parseUnsigned(argv[++i], "--jobs");
        return true;
    }
    if ((accepted & kFlagEngine) && flag == "--engine") {
        fatalIf(i + 1 >= argc, "--engine expects a value");
        std::string value = argv[++i];
        auto engine = sim::parseEngine(value);
        fatalIf(!engine, "unknown engine: " + value +
                             " (use percell|onepass)");
        out.engine = *engine;
        return true;
    }
    return false;
}

void
writeJsonSink(const CommonFlags& flags,
              const std::function<void(std::ostream&)>& write)
{
    if (!flags.json)
        return;
    if (flags.jsonToStdout()) {
        write(std::cout);
        return;
    }
    std::ofstream ofs(flags.jsonPath);
    fatalIf(!ofs, "cannot open " + flags.jsonPath);
    write(ofs);
}

std::string
commonUsage(unsigned accepted)
{
    std::string usage;
    auto append = [&](const char* fragment) {
        if (!usage.empty())
            usage += " ";
        usage += fragment;
    };
    if (accepted & kFlagJobs)
        append("[--jobs N]");
    if (accepted & kFlagProgress)
        append("[--progress]");
    if (accepted & kFlagJson)
        append("[--json [path]]");
    if (accepted & kFlagEngine)
        append("[--engine percell|onepass]");
    return usage;
}

} // namespace jcache::tools
