/**
 * @file
 * DataCache: the first-level data cache model at the heart of the
 * reproduction.
 *
 * Implements every policy combination the paper studies:
 *
 *  - write hits: write-through or write-back (Section 3);
 *  - write misses: fetch-on-write, write-validate, write-around, or
 *    write-invalidate (Section 4), with the paper's legality rules
 *    (no-write-allocate policies require write-through);
 *  - per-byte valid bits (write-validate sub-blocking) and per-byte
 *    dirty bits (Section 5.2 byte-level victim accounting);
 *  - direct-mapped or LRU set-associative placement;
 *  - flush() for flush-stop accounting vs. the default cold stop.
 *
 * Miss accounting follows Section 4's "eliminated miss" definitions
 * naturally: a miss is charged when and only when a line fetch is
 * actually required, so the deferred misses of the no-fetch policies
 * (a read touching invalid bytes, a read of around-written or
 * invalidated data) surface as ordinary read misses.
 */

#ifndef JCACHE_CORE_DATA_CACHE_HH
#define JCACHE_CORE_DATA_CACHE_HH

#include <vector>

#include "core/config.hh"
#include "core/geometry.hh"
#include "core/line.hh"
#include "mem/mem_level.hh"
#include "trace/record.hh"

namespace jcache::core
{

class VictimCache;

/**
 * Event counters for one DataCache.
 *
 * "Counted" misses equal lines fetched, matching the paper's metric:
 * under the no-fetch write-miss policies a write miss that never
 * forces a fetch is an eliminated miss and is not counted.
 */
struct CacheStats
{
    Count reads = 0;              //!< read accesses (per line piece)
    Count writes = 0;             //!< write accesses (per line piece)
    Count readHits = 0;
    Count writeHits = 0;

    Count readMisses = 0;         //!< reads that required a fetch
    Count partialValidReadMisses = 0; //!< subset: tag hit, bytes invalid
    Count writeMisses = 0;        //!< writes whose tag lookup missed
    Count writeMissFetches = 0;   //!< fetches caused by write misses
    Count linesFetched = 0;       //!< all line fetches from below

    Count writesToDirtyLines = 0; //!< writes hitting an already-dirty line
    Count writeThroughs = 0;      //!< writes passed to the next level
    Count invalidations = 0;      //!< lines killed by write-invalidate

    Count victims = 0;            //!< valid lines replaced (cold stop)
    Count dirtyVictims = 0;
    Count dirtyVictimDirtyBytes = 0;

    Count flushedValidLines = 0;  //!< valid lines drained by flush()
    Count flushedDirtyLines = 0;
    Count flushedDirtyBytes = 0;

    Count victimCacheHits = 0;    //!< misses satisfied by a victim cache
    Count lineAllocs = 0;         //!< allocateLine() instructions
    Count validateFallbacks = 0;  //!< write-validate misses fetched
                                  //!< because the write was narrower
                                  //!< than the valid-bit granularity

    /** Misses as the paper counts them: line fetches. */
    Count countedMisses() const { return linesFetched; }

    Count accesses() const { return reads + writes; }
};

/**
 * Trace-driven first-level data cache.
 */
class DataCache
{
  public:
    /**
     * @param config cache configuration; validated on construction.
     * @param next   next lower level of the hierarchy (not owned; must
     *               outlive the cache).
     */
    DataCache(const CacheConfig& config, mem::MemLevel& next);

    /** Apply one data read of `size` bytes at `addr`. */
    void read(Addr addr, unsigned size);

    /** Apply one data write of `size` bytes at `addr`. */
    void write(Addr addr, unsigned size);

    /** Dispatch a trace record to read()/write(). */
    void access(const trace::TraceRecord& record);

    /**
     * Execute a cache-line allocation instruction (paper Section 4;
     * the 801 [12], MultiTitan [9] and PA-RISC [4] provided these):
     * install addr's line fully valid without fetching its memory
     * contents.  Software guarantees the whole line will be written
     * before any read — the simulator trusts that contract, as the
     * hardware does.  The line is marked fully dirty in a write-back
     * cache (its contents must eventually be written back).
     */
    void allocateLine(Addr addr);

    /**
     * Drain all dirty lines to the next level (flush-stop accounting,
     * Section 5).  Lines become clean but stay valid.
     */
    void flush();

    /** Invalidate every line and zero the statistics. */
    void reset();

    /**
     * Attach a victim cache (extension per Jouppi [10]): victims are
     * inserted into it and genuine misses probe it before fetching.
     * The victim cache's line size must match; it must outlive the
     * data cache.  Pass nullptr to detach.
     */
    void attachVictimCache(VictimCache* victim_cache);

    const CacheStats& stats() const { return stats_; }
    const CacheConfig& config() const { return config_; }
    const CacheGeometry& geometry() const { return geom_; }

    /** @name Introspection for tests. */
    /// @{
    /** Is the line containing addr present (tag match, any valid)? */
    bool contains(Addr addr) const;

    /** Valid mask of the line containing addr (0 if absent). */
    ByteMask validMask(Addr addr) const;

    /** Dirty mask of the line containing addr (0 if absent). */
    ByteMask dirtyMask(Addr addr) const;

    /** Number of lines currently valid. */
    Count validLineCount() const;

    /** Number of lines currently dirty. */
    Count dirtyLineCount() const;
    /// @}

  private:
    /** Find the way holding addr's line, or nullptr. */
    CacheLine* lookup(Addr addr);
    const CacheLine* lookup(Addr addr) const;

    /** Pick the victim way in addr's set (invalid first, then LRU). */
    CacheLine& victimWay(Addr addr);

    /**
     * Retire a valid line: account victim statistics and write back
     * dirty bytes.  The caller overwrites the line afterwards.
     */
    void evict(CacheLine& line, std::uint64_t set);

    void readPiece(Addr addr, unsigned size);
    void writePiece(Addr addr, unsigned size);

    /**
     * Retire `way` (victim statistics, write-back or victim-cache
     * insertion) and probe an attached victim cache for addr's line;
     * on a hit, install it into `way` with no fetch from below.  The
     * probe logically precedes the victim insertion, as in hardware.
     *
     * @return true if the line was recovered from the victim cache.
     */
    bool evictAndFillFromVictimCache(Addr addr, CacheLine& way);

    /** Split an access at line boundaries and apply `piece` to each. */
    template <typename Piece>
    void forEachPiece(Addr addr, unsigned size, Piece piece);

    CacheConfig config_;
    CacheGeometry geom_;
    mem::MemLevel& next_;
    VictimCache* victimCache_ = nullptr;
    std::vector<CacheLine> lines_;
    CacheStats stats_;
    Count accessCounter_ = 0;
    bool isWriteBack_;
    ByteMask fullMask_;
    std::uint64_t rngState_ = 0x9e3779b97f4a7c15ull;
};

} // namespace jcache::core

#endif // JCACHE_CORE_DATA_CACHE_HH
