/**
 * @file
 * Property-based tests: invariants that must hold across the whole
 * configuration space, swept with parameterized gtest over geometry
 * and policy combinations on a deterministic synthetic reference
 * stream.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "core/data_cache.hh"
#include "mem/traffic_meter.hh"

namespace jcache::core
{
namespace
{

/** Deterministic mixed reference stream with reuse and conflicts. */
struct SyntheticStream
{
    std::uint64_t x = 0x2545f4914f6cdd1dull;

    template <typename Fn>
    void
    replay(Fn&& access, int n = 60000)
    {
        for (int i = 0; i < n; ++i) {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            std::uint64_t r = x * 0x2545f4914f6cdd1dull;
            // Mix of hot region (50%), warm region (40%), cold (10%).
            Addr addr;
            unsigned region = (r >> 8) % 10;
            if (region < 5)
                addr = (r >> 16) % 2048;          // 2KB hot
            else if (region < 9)
                addr = 0x10000 + (r >> 16) % 32768;  // 32KB warm
            else
                addr = 0x100000 + ((r >> 16) % 1048576);
            unsigned size = (r & 1) ? 8 : 4;
            addr &= ~Addr{size - 1};
            bool is_write = ((r >> 4) % 10) < 3;  // ~30% writes
            access(addr, size, is_write);
        }
    }
};

using Geometry = std::tuple<Count, unsigned, unsigned>;  // size, line, ways

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{
  protected:
    CacheConfig
    config(WriteHitPolicy hit, WriteMissPolicy miss) const
    {
        auto [size, line, ways] = GetParam();
        CacheConfig c;
        c.sizeBytes = size;
        c.lineBytes = line;
        c.assoc = ways;
        c.hitPolicy = hit;
        c.missPolicy = miss;
        return c;
    }

    CacheStats
    run(WriteHitPolicy hit, WriteMissPolicy miss,
        mem::TrafficMeter* out_meter = nullptr) const
    {
        mem::TrafficMeter meter;
        DataCache cache(config(hit, miss), meter);
        SyntheticStream stream;
        stream.replay([&](Addr a, unsigned s, bool w) {
            if (w)
                cache.write(a, s);
            else
                cache.read(a, s);
        });
        cache.flush();
        if (out_meter)
            *out_meter = meter;
        return cache.stats();
    }
};

TEST_P(GeometrySweep, Figure17PartialOrderOfFetchTraffic)
{
    Count fow = run(WriteHitPolicy::WriteThrough,
                    WriteMissPolicy::FetchOnWrite).countedMisses();
    Count wv = run(WriteHitPolicy::WriteThrough,
                   WriteMissPolicy::WriteValidate).countedMisses();
    Count wa = run(WriteHitPolicy::WriteThrough,
                   WriteMissPolicy::WriteAround).countedMisses();
    Count wi = run(WriteHitPolicy::WriteThrough,
                   WriteMissPolicy::WriteInvalidate).countedMisses();
    auto ways = std::get<2>(GetParam());
    if (ways == 1) {
        // Figure 17's partial order is stated for the direct-mapped
        // write-invalidate semantics (concurrent write corrupts the
        // indexed line).
        EXPECT_LE(wv, wi);
        EXPECT_LE(wa, wi);
        EXPECT_LE(wi, fow);
    } else {
        // With associativity the probe precedes the write, nothing is
        // corrupted, and write-invalidate degenerates to write-around.
        EXPECT_EQ(wi, wa);
        EXPECT_LE(wa, fow);
        EXPECT_LE(wv, fow);
    }
}

TEST_P(GeometrySweep, HitsPlusMissesEqualAccesses)
{
    for (WriteMissPolicy miss :
         {WriteMissPolicy::FetchOnWrite, WriteMissPolicy::WriteValidate,
          WriteMissPolicy::WriteAround,
          WriteMissPolicy::WriteInvalidate}) {
        CacheStats s = run(WriteHitPolicy::WriteThrough, miss);
        EXPECT_EQ(s.readHits + s.readMisses, s.reads) << name(miss);
        EXPECT_EQ(s.writeHits + s.writeMisses, s.writes) << name(miss);
    }
}

TEST_P(GeometrySweep, WriteThroughTrafficConservation)
{
    // Every write leaves a write-through cache exactly once.
    mem::TrafficMeter meter;
    CacheStats s = run(WriteHitPolicy::WriteThrough,
                       WriteMissPolicy::FetchOnWrite, &meter);
    EXPECT_EQ(meter.writeThroughs().transactions, s.writes);
    EXPECT_EQ(s.writeThroughs, s.writes);
    EXPECT_EQ(meter.writeBacks().transactions, 0u);
    EXPECT_EQ(meter.flushBacks().transactions, 0u);
}

TEST_P(GeometrySweep, WriteBackDirtyDataConservation)
{
    // Bytes dirtied must all eventually emerge: execution write-backs
    // plus flush write-backs account for every dirty victim byte, and
    // a fully-flushed cache holds no dirty lines.
    mem::TrafficMeter meter;
    CacheStats s = run(WriteHitPolicy::WriteBack,
                       WriteMissPolicy::FetchOnWrite, &meter);
    EXPECT_EQ(meter.writeBacks().bytes, s.dirtyVictimDirtyBytes);
    EXPECT_EQ(meter.flushBacks().bytes, s.flushedDirtyBytes);
    EXPECT_EQ(meter.writeBacks().transactions, s.dirtyVictims);
    EXPECT_EQ(meter.flushBacks().transactions, s.flushedDirtyLines);
    // Write-back transactions equal writes minus writes-to-dirty
    // (the Section 3 identity) since fetch-on-write allocates every
    // written line.
    EXPECT_EQ(meter.writeBacks().transactions +
                  meter.flushBacks().transactions,
              s.writes - s.writesToDirtyLines);
}

TEST_P(GeometrySweep, FetchOnWriteContentsIndependentOfHitPolicy)
{
    CacheStats wt = run(WriteHitPolicy::WriteThrough,
                        WriteMissPolicy::FetchOnWrite);
    CacheStats wb = run(WriteHitPolicy::WriteBack,
                        WriteMissPolicy::FetchOnWrite);
    EXPECT_EQ(wt.readMisses, wb.readMisses);
    EXPECT_EQ(wt.writeMisses, wb.writeMisses);
    EXPECT_EQ(wt.countedMisses(), wb.countedMisses());
}

TEST_P(GeometrySweep, WriteValidateContentsIndependentOfHitPolicy)
{
    CacheStats wt = run(WriteHitPolicy::WriteThrough,
                        WriteMissPolicy::WriteValidate);
    CacheStats wb = run(WriteHitPolicy::WriteBack,
                        WriteMissPolicy::WriteValidate);
    EXPECT_EQ(wt.countedMisses(), wb.countedMisses());
    EXPECT_EQ(wt.partialValidReadMisses, wb.partialValidReadMisses);
}

TEST_P(GeometrySweep, FetchTrafficBytesEqualFetchesTimesLine)
{
    auto [size, line, ways] = GetParam();
    (void)size;
    (void)ways;
    mem::TrafficMeter meter;
    CacheStats s = run(WriteHitPolicy::WriteBack,
                       WriteMissPolicy::FetchOnWrite, &meter);
    EXPECT_EQ(meter.fetches().bytes,
              s.linesFetched * static_cast<Count>(line));
}

TEST_P(GeometrySweep, DirtyBytesNeverExceedLineBytes)
{
    auto [size, line, ways] = GetParam();
    (void)size;
    (void)ways;
    CacheStats s = run(WriteHitPolicy::WriteBack,
                       WriteMissPolicy::WriteValidate);
    EXPECT_LE(s.dirtyVictimDirtyBytes,
              s.dirtyVictims * static_cast<Count>(line));
    EXPECT_LE(s.flushedDirtyBytes,
              s.flushedDirtyLines * static_cast<Count>(line));
    // Dirty victims imply victims.
    EXPECT_LE(s.dirtyVictims, s.victims);
    EXPECT_LE(s.flushedDirtyLines, s.flushedValidLines);
}

TEST_P(GeometrySweep, HigherAssociativityNeverAddsConflictFetches)
{
    // Not a theorem in general (LRU anomalies exist for direct-mapped
    // vs associative), but on this stream with equal capacity the
    // 8-way cache should not fetch dramatically more than 1-way.
    auto [size, line, ways] = GetParam();
    if (ways != 1)
        GTEST_SKIP() << "baseline geometry only";
    CacheConfig base = config(WriteHitPolicy::WriteBack,
                              WriteMissPolicy::FetchOnWrite);
    CacheConfig assoc = base;
    assoc.assoc = 8;
    mem::TrafficMeter m1, m8;
    DataCache c1(base, m1), c8(assoc, m8);
    SyntheticStream s1, s8;
    s1.replay([&](Addr a, unsigned s, bool w) {
        w ? c1.write(a, s) : c1.read(a, s);
    });
    s8.replay([&](Addr a, unsigned s, bool w) {
        w ? c8.write(a, s) : c8.read(a, s);
    });
    EXPECT_LT(c8.stats().linesFetched,
              c1.stats().linesFetched * 11 / 10);
    (void)line;
    (void)size;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(
        Geometry(1024, 16, 1), Geometry(4096, 16, 1),
        Geometry(16384, 16, 1), Geometry(65536, 16, 1),
        Geometry(8192, 4, 1), Geometry(8192, 8, 1),
        Geometry(8192, 32, 1), Geometry(8192, 64, 1),
        Geometry(8192, 16, 2), Geometry(8192, 16, 4),
        Geometry(2048, 32, 2), Geometry(1024, 64, 4)),
    [](const auto& info) {
        return std::to_string(std::get<0>(info.param) / 1024) +
               "KB_" + std::to_string(std::get<1>(info.param)) +
               "B_" + std::to_string(std::get<2>(info.param)) + "way";
    });

} // namespace
} // namespace jcache::core
