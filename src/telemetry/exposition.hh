/**
 * @file
 * Prometheus text exposition: rendering and parsing.
 *
 * The wire format (text exposition format 0.0.4) is three line
 * shapes per metric family:
 *
 *     # HELP <name> <help text>
 *     # TYPE <name> counter|gauge|histogram
 *     <name>{<label>="<value>",...} <number>
 *
 * Histogram families expand into `<name>_bucket{le="..."}` cumulative
 * bucket lines (ending at `le="+Inf"`), plus `<name>_sum` and
 * `<name>_count`.  render() emits the format; parse() reads it back
 * into structured samples — the client's `metrics` subcommand
 * pretty-prints through it, and the grammar test round-trips it.
 */

#ifndef JCACHE_TELEMETRY_EXPOSITION_HH
#define JCACHE_TELEMETRY_EXPOSITION_HH

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace jcache::telemetry
{

/** Render family snapshots in Prometheus text exposition format. */
void render(std::ostream& os,
            const std::vector<FamilySnapshot>& families);

/** Render the process-wide registry (convenience wrapper). */
std::string renderRegistry();

/** One parsed sample line (`name{labels} value`). */
struct ParsedSample
{
    /** Full sample name, including any _bucket/_sum/_count suffix. */
    std::string name;

    Labels labels;
    double value = 0.0;
};

/** One parsed metric family: HELP/TYPE header plus its samples. */
struct ParsedFamily
{
    std::string name;
    std::string help;
    std::string type;
    std::vector<ParsedSample> samples;
};

/**
 * Parse exposition text into families.  Returns false (and sets
 * `error` to "line N: what") on the first line that matches none of
 * the three shapes; samples appearing before any header are grouped
 * under a family with an empty type.
 */
bool parse(const std::string& text,
           std::vector<ParsedFamily>& families, std::string* error);

} // namespace jcache::telemetry

#endif // JCACHE_TELEMETRY_EXPOSITION_HH
