# Empty compiler generated dependencies file for jcache.
# This may be replaced when dependencies are built.
