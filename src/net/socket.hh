/**
 * @file
 * Thin RAII wrappers around POSIX TCP sockets.
 *
 * The service layer needs exactly three things from the transport:
 * a listener bound to a loopback port, blocking connections with
 * per-operation timeouts, and a way to interrupt a blocked accept for
 * graceful shutdown.  Socket and Listener provide those and nothing
 * else; framing lives one layer up in net/frame.hh.
 *
 * All operations report failure by return value (IoResult) rather
 * than exceptions: a peer resetting a connection is a normal event
 * for a server, not an error path.
 */

#ifndef JCACHE_NET_SOCKET_HH
#define JCACHE_NET_SOCKET_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace jcache::net
{

/** Outcome of a socket read or write. */
enum class IoStatus : std::uint8_t
{
    Ok,       //!< the full requested transfer completed
    Closed,   //!< the peer closed the connection (EOF before any byte)
    Timeout,  //!< the per-operation timeout expired mid-transfer
    Error,    //!< any other socket error (reset, EPIPE, ...)
};

/** Status plus the number of bytes actually transferred. */
struct IoResult
{
    IoStatus status = IoStatus::Ok;
    std::size_t bytes = 0;

    bool ok() const { return status == IoStatus::Ok; }
};

/**
 * An owned, connected TCP socket.
 *
 * Move-only; the destructor closes the descriptor.  Reads and writes
 * loop until the requested length completes, the peer closes, the
 * timeout set by setTimeout() expires, or an error occurs.
 */
class Socket
{
  public:
    /** An empty (invalid) socket. */
    Socket() = default;

    /** Adopt an already-open descriptor (from accept or socketpair). */
    explicit Socket(int fd) : fd_(fd) {}

    ~Socket();

    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    /**
     * Connect to host:port.  Returns an invalid Socket (and sets
     * `error` when non-null) on failure.
     */
    static Socket connectTo(const std::string& host, std::uint16_t port,
                            std::string* error = nullptr);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Per-operation timeout for both reads and writes, in
     * milliseconds; 0 disables (block indefinitely).
     */
    void setTimeout(unsigned millis);

    /** Read-side timeout only. */
    void setReadTimeout(unsigned millis);

    /** Write-side timeout only. */
    void setWriteTimeout(unsigned millis);

    /**
     * Switch the descriptor between blocking and nonblocking mode.
     * In nonblocking mode readSome/writeSome report Timeout when the
     * kernel buffer is empty/full (EAGAIN) — the reactor treats that
     * as "would block, wait for readiness".
     */
    bool setNonBlocking(bool enable = true);

    /** Read exactly `len` bytes unless EOF/timeout/error intervenes. */
    IoResult readAll(void* buf, std::size_t len);

    /**
     * Read whatever is available, up to `len` bytes — for protocols
     * without a length prefix (the telemetry layer's HTTP endpoint
     * reads until a blank line).  Ok with bytes > 0 on data; Closed
     * on EOF before any byte.
     */
    IoResult readSome(void* buf, std::size_t len);

    /** Write exactly `len` bytes unless timeout/error intervenes. */
    IoResult writeAll(const void* buf, std::size_t len);

    /**
     * One send attempt: write whatever the kernel buffer accepts, up
     * to `len` bytes.  Ok with bytes > 0 on progress; Timeout when a
     * nonblocking socket would block (nothing sent).
     */
    IoResult writeSome(const void* buf, std::size_t len);

    /** Half-close the write side (peer sees EOF after buffered data). */
    void shutdownWrite();

    /** Close now rather than at destruction. */
    void close();

  private:
    int fd_ = -1;
};

/**
 * A listening TCP socket bound to the loopback interface.
 *
 * Binding to port 0 picks an ephemeral port, readable back through
 * port() — tests and the daemon's --port-file use this to avoid
 * collisions.  accept() polls with a short period and re-checks an
 * external stop flag, so a signal handler that sets the flag
 * interrupts the accept loop within one period.
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(Listener&& other) noexcept;
    Listener& operator=(Listener&& other) noexcept;
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /**
     * Bind and listen on 127.0.0.1:port (0 = ephemeral).  Returns an
     * invalid Listener (and sets `error` when non-null) on failure.
     */
    static Listener listenOn(std::uint16_t port,
                             std::string* error = nullptr);

    bool valid() const { return fd_ >= 0; }

    /** The listening descriptor, for registration with a poller. */
    int fd() const { return fd_; }

    /** The bound port (the chosen one, if constructed with port 0). */
    std::uint16_t port() const { return port_; }

    /** Make accept nonblocking for use under a readiness poller. */
    bool setNonBlocking(bool enable = true);

    /**
     * Accept one connection.  Polls in `poll_millis` slices and
     * returns an invalid Socket as soon as `stop` (if non-null) reads
     * true, so shutdown latency is bounded by one slice.
     */
    Socket accept(const std::atomic<bool>* stop = nullptr,
                  unsigned poll_millis = 100);

    /**
     * Accept one already-pending connection without waiting.  Returns
     * an invalid Socket when none is queued (EAGAIN) or on error —
     * the reactor's accept callback loops until this reports empty.
     */
    Socket acceptNonBlocking();

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace jcache::net

#endif // JCACHE_NET_SOCKET_HH
