/**
 * @file
 * Implementation of WriteCache.
 */

#include "core/write_cache.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace jcache::core
{

WriteCache::WriteCache(unsigned entries, unsigned entry_bytes,
                       mem::MemLevel* next)
    : entryBytes_(entry_bytes), next_(next), entries_(entries)
{
    fatalIf(!isPowerOfTwo(entry_bytes) || entry_bytes > 64,
            "write cache entry width must be a power of two <= 64");
}

WriteCache::Entry*
WriteCache::find(Addr entry_addr)
{
    for (Entry& e : entries_) {
        if (e.dirty != 0 && e.addr == entry_addr)
            return &e;
    }
    return nullptr;
}

void
WriteCache::drainEntry(Entry& entry)
{
    if (entry.dirty == 0)
        return;
    if (next_)
        next_->writeThrough(entry.addr, popcount(entry.dirty));
    entry.dirty = 0;
}

void
WriteCache::writeThrough(Addr addr, unsigned bytes)
{
    ++writesIn_;
    ++useCounter_;

    if (entries_.empty()) {
        if (next_)
            next_->writeThrough(addr, bytes);
        return;
    }

    // A write wider than an entry cannot occur with the paper's 8B
    // entries, but split defensively for narrower configurations.
    Addr entry_addr = alignDown(addr, entryBytes_);
    unsigned offset = static_cast<unsigned>(addr - entry_addr);
    fatalIf(offset + bytes > entryBytes_,
            "write cache writes must not straddle entries");
    ByteMask mask = byteMaskFor(offset, bytes);

    if (Entry* hit = find(entry_addr)) {
        hit->dirty |= mask;
        hit->lastUse = useCounter_;
        ++merges_;
        return;
    }

    // Miss: claim a free slot, or evict the LRU entry to the next
    // level to make room (Figure 6).
    Entry* slot = nullptr;
    for (Entry& e : entries_) {
        if (e.dirty == 0) {
            slot = &e;
            break;
        }
        if (!slot || e.lastUse < slot->lastUse)
            slot = &e;
    }
    if (slot->dirty != 0) {
        drainEntry(*slot);
        ++evictions_;
    }
    slot->addr = entry_addr;
    slot->dirty = mask;
    slot->lastUse = useCounter_;
}

void
WriteCache::fetchLine(Addr addr, unsigned bytes)
{
    // Flush overlapping dirty entries first so the fetch returns data
    // that includes them.
    Addr line_end = addr + bytes;
    for (Entry& e : entries_) {
        if (e.dirty != 0 && e.addr >= addr && e.addr < line_end) {
            drainEntry(e);
            ++fetchFlushes_;
        }
    }
    if (next_)
        next_->fetchLine(addr, bytes);
}

void
WriteCache::writeBack(Addr addr, unsigned line_bytes,
                      unsigned dirty_bytes, bool is_flush)
{
    if (next_)
        next_->writeBack(addr, line_bytes, dirty_bytes, is_flush);
}

void
WriteCache::flush()
{
    for (Entry& e : entries_)
        drainEntry(e);
}

unsigned
WriteCache::occupancy() const
{
    return static_cast<unsigned>(
        std::count_if(entries_.begin(), entries_.end(),
                      [](const Entry& e) { return e.dirty != 0; }));
}

double
WriteCache::fractionRemoved() const
{
    if (writesIn_ == 0)
        return 0.0;
    return static_cast<double>(merges_) /
           static_cast<double>(writesIn_);
}

void
WriteCache::reset()
{
    for (Entry& e : entries_)
        e = Entry{};
    useCounter_ = 0;
    writesIn_ = 0;
    merges_ = 0;
    evictions_ = 0;
    fetchFlushes_ = 0;
}

} // namespace jcache::core
