file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_16_write_miss.dir/bench_fig13_16_write_miss.cc.o"
  "CMakeFiles/bench_fig13_16_write_miss.dir/bench_fig13_16_write_miss.cc.o.d"
  "bench_fig13_16_write_miss"
  "bench_fig13_16_write_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_16_write_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
