/**
 * @file
 * Minimal streaming JSON emission for run reports.
 *
 * The counterpart of csv.hh for structured export: enough of a writer
 * to serialize sweep reports (nested objects, arrays, numbers,
 * strings) without any third-party dependency.  Strings are escaped
 * per RFC 8259; numbers print with enough precision to round-trip a
 * double.
 */

#ifndef JCACHE_STATS_JSON_HH
#define JCACHE_STATS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace jcache::stats
{

/**
 * Streaming JSON writer over an externally owned ostream.
 *
 * Usage follows document order: beginObject()/endObject() and
 * beginArray()/endArray() nest, field() emits "key": value pairs
 * inside objects, and the writer inserts commas and indentation.
 * Misnesting (ending a scope that was never begun) aborts via panic —
 * it is a programming error, not an I/O condition.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os) : os_(os) {}

    /** Open an object: anonymous at top level / inside arrays. */
    void beginObject();

    /** Open an object-valued field inside the current object. */
    void beginObject(const std::string& key);

    void endObject();

    /** Open an array-valued field inside the current object. */
    void beginArray(const std::string& key);

    void endArray();

    void field(const std::string& key, const std::string& value);
    void field(const std::string& key, double value);
    void field(const std::string& key, bool value);

    /**
     * String-literal values must not fall into the bool overload
     * (pointer-to-bool is a standard conversion and would win over
     * the user-defined conversion to std::string).
     */
    void field(const std::string& key, const char* value)
    {
        field(key, std::string(value));
    }

    /**
     * A field whose value is an already-serialized JSON document —
     * the service layer uses this to embed a cached result payload in
     * a response envelope without reparsing it.  The caller vouches
     * that `raw_json` is valid JSON.
     */
    void rawField(const std::string& key, const std::string& raw_json);

    /** A bare numeric array element (inside beginArray scopes). */
    void element(double value);

    /** A bare string array element (inside beginArray scopes). */
    void element(const std::string& value);

    /** Literal elements, same pointer-to-bool hazard as field(). */
    void element(const char* value) { element(std::string(value)); }

    /** Escape and quote a string per RFC 8259. */
    static std::string quote(const std::string& s);

    /** Shortest representation that round-trips the double. */
    static std::string number(double value);

  private:
    void comma();
    void indent();

    std::ostream& os_;
    std::vector<char> scopes_;   // '{' or '[' per open scope
    bool first_in_scope_ = true;
};

} // namespace jcache::stats

#endif // JCACHE_STATS_JSON_HH
