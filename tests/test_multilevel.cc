/**
 * @file
 * Integration tests for two-level cache stacks (the paper assumes two
 * or more levels; Section 1): an L1 DataCache backed by a
 * SecondLevelCache backed by MainMemory.
 */

#include <gtest/gtest.h>

#include "core/data_cache.hh"
#include "mem/main_memory.hh"
#include "mem/second_level_cache.hh"
#include "mem/traffic_meter.hh"

namespace jcache
{
namespace
{

using core::CacheConfig;
using core::DataCache;
using core::WriteHitPolicy;
using core::WriteMissPolicy;

CacheConfig
l1Config()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.lineBytes = 16;
    c.hitPolicy = WriteHitPolicy::WriteBack;
    c.missPolicy = WriteMissPolicy::FetchOnWrite;
    return c;
}

CacheConfig
l2Config()
{
    CacheConfig c;
    c.sizeBytes = 16 * 1024;
    c.lineBytes = 64;
    c.hitPolicy = WriteHitPolicy::WriteBack;
    c.missPolicy = WriteMissPolicy::FetchOnWrite;
    return c;
}

struct Stack
{
    mem::MainMemory memory{0};
    mem::TrafficMeter l2_back;
    mem::SecondLevelCache l2;
    mem::TrafficMeter l1_back;
    DataCache l1;

    Stack()
        : l2_back(&memory), l2(l2Config(), l2_back), l1_back(&l2),
          l1(l1Config(), l1_back)
    {}
};

TEST(MultiLevel, L1MissFetchesThroughL2)
{
    Stack stack;
    stack.l1.read(0x100, 4);
    EXPECT_EQ(stack.l1.stats().readMisses, 1u);
    EXPECT_EQ(stack.l2.stats().readMisses, 1u);
    EXPECT_EQ(stack.l2_back.fetches().transactions, 1u);
    EXPECT_EQ(stack.l2_back.fetches().bytes, 64u);  // L2 line
}

TEST(MultiLevel, L2AbsorbsL1ConflictMisses)
{
    Stack stack;
    // 0x000 and 0x400 conflict in the 1KB L1 but not in the 16KB L2.
    stack.l1.read(0x000, 4);
    stack.l1.read(0x400, 4);
    stack.l1.read(0x000, 4);
    stack.l1.read(0x400, 4);
    EXPECT_EQ(stack.l1.stats().readMisses, 4u);
    // L2: 0x000 and 0x400 are two distinct 64B lines -> 2 misses,
    // then hits.
    EXPECT_EQ(stack.l2.stats().readMisses, 2u);
    EXPECT_EQ(stack.l2.stats().readHits, 2u);
    EXPECT_EQ(stack.l2_back.fetches().transactions, 2u);
}

TEST(MultiLevel, L1SpatialLocalityWithinL2Line)
{
    Stack stack;
    // Four consecutive L1 lines share one 64B L2 line.
    for (Addr a = 0; a < 64; a += 16)
        stack.l1.read(a, 4);
    EXPECT_EQ(stack.l1.stats().readMisses, 4u);
    EXPECT_EQ(stack.l2.stats().readMisses, 1u);
    EXPECT_EQ(stack.l2.stats().readHits, 3u);
}

TEST(MultiLevel, DirtyVictimWritesIntoL2)
{
    Stack stack;
    stack.l1.write(0x000, 4);
    stack.l1.read(0x400, 4);  // evicts dirty line into L2
    // The write-back is an L2 write hit (line already resident from
    // the fetch-on-write), so no extra memory traffic.
    EXPECT_EQ(stack.l2.stats().writes, 1u);
    EXPECT_EQ(stack.l2.stats().writeHits, 1u);
    EXPECT_EQ(stack.l2_back.writeBacks().transactions, 0u);
    // The dirty data now lives in the L2.
    EXPECT_TRUE(stack.l2.cache().contains(0x000));
    EXPECT_NE(stack.l2.cache().dirtyMask(0x000), 0u);
}

TEST(MultiLevel, FlushCascades)
{
    Stack stack;
    stack.l1.write(0x000, 4);
    stack.l1.flush();       // dirty line -> L2
    stack.l2.flush();       // L2's dirty line -> memory
    EXPECT_EQ(stack.l2_back.flushBacks().transactions, 1u);
    EXPECT_EQ(stack.memory.transactions(), 2u);  // fetch + flush
}

TEST(MultiLevel, WriteThroughL1OverWriteBackL2)
{
    // A common real organization: WT L1 (parity only) over WB L2
    // (ECC) — the paper's Section 3.3 recommendation for small L1s.
    mem::MainMemory memory(0);
    mem::TrafficMeter l2_back(&memory);
    mem::SecondLevelCache l2(l2Config(), l2_back);
    mem::TrafficMeter l1_back(&l2);
    CacheConfig wt = l1Config();
    wt.hitPolicy = WriteHitPolicy::WriteThrough;
    wt.missPolicy = WriteMissPolicy::WriteValidate;
    DataCache l1(wt, l1_back);

    for (int i = 0; i < 100; ++i)
        l1.write(0x100, 4);
    // All 100 stores reach the L2 but coalesce in its line.
    EXPECT_EQ(l2.stats().writes, 100u);
    EXPECT_EQ(l2_back.writeBacks().transactions, 0u);
    EXPECT_EQ(l2_back.writeThroughs().transactions, 0u);
    // Memory saw only the L2's fetch-on-write of the line; the dirty
    // data stays in the write-back L2.
    EXPECT_EQ(l2_back.fetches().transactions, 1u);
    EXPECT_EQ(memory.transactions(), 1u);
}

TEST(MultiLevel, L2SmallerLinesThanL1Work)
{
    mem::MainMemory memory(0);
    CacheConfig small_line = l2Config();
    small_line.lineBytes = 16;
    mem::TrafficMeter l2_back(&memory);
    mem::SecondLevelCache l2(small_line, l2_back);
    mem::TrafficMeter l1_back(&l2);
    CacheConfig l1cfg = l1Config();
    l1cfg.lineBytes = 64;
    l1cfg.sizeBytes = 4096;
    DataCache l1(l1cfg, l1_back);

    l1.read(0x100, 4);  // 64B fetch = four 16B L2 accesses
    EXPECT_EQ(l2.stats().reads, 4u);
    EXPECT_EQ(l2.stats().readMisses, 4u);
}

} // namespace
} // namespace jcache
