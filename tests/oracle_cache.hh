/**
 * @file
 * An independent, deliberately naive reference implementation of the
 * cache semantics, used only by the differential tests.
 *
 * OracleCache favours obvious correctness over speed: lines live in a
 * std::map keyed by line address, sets are recovered by modular
 * arithmetic, and every policy decision is written out longhand.  If
 * DataCache and OracleCache ever disagree on a counter over a random
 * stream, one of them is wrong — and the oracle is easy to audit.
 */

#ifndef JCACHE_TESTS_ORACLE_CACHE_HH
#define JCACHE_TESTS_ORACLE_CACHE_HH

#include <algorithm>
#include <map>
#include <vector>

#include "core/config.hh"
#include "util/types.hh"

namespace jcache::test
{

/** Counters mirroring the subset of CacheStats the oracle checks. */
struct OracleStats
{
    Count readHits = 0;
    Count readMisses = 0;
    Count writeHits = 0;
    Count writeMisses = 0;
    Count linesFetched = 0;
    Count writesToDirtyLines = 0;
    Count dirtyVictims = 0;
    Count dirtyVictimDirtyBytes = 0;
};

/**
 * Naive model of a set-associative cache with the paper's write
 * policies (LRU replacement only).
 */
class OracleCache
{
  public:
    explicit OracleCache(const core::CacheConfig& config)
        : config_(config)
    {
        config.validate();
        numSets_ = config.sizeBytes /
                   (static_cast<Count>(config.lineBytes) *
                    config.assoc);
    }

    void
    read(Addr addr, unsigned size)
    {
        for (auto [a, s] : split(addr, size))
            readPiece(a, s);
    }

    void
    write(Addr addr, unsigned size)
    {
        for (auto [a, s] : split(addr, size))
            writePiece(a, s);
    }

    const OracleStats& stats() const { return stats_; }

  private:
    struct Line
    {
        std::vector<bool> valid;
        std::vector<bool> dirty;
        Count lastUse = 0;
    };

    Addr lineAddr(Addr a) const { return a - a % config_.lineBytes; }
    Count setOf(Addr a) const
    {
        return (a / config_.lineBytes) % numSets_;
    }

    std::vector<std::pair<Addr, unsigned>>
    split(Addr addr, unsigned size) const
    {
        std::vector<std::pair<Addr, unsigned>> pieces;
        while (size > 0) {
            auto room = static_cast<unsigned>(
                config_.lineBytes - addr % config_.lineBytes);
            unsigned piece = std::min(size, room);
            pieces.emplace_back(addr, piece);
            addr += piece;
            size -= piece;
        }
        return pieces;
    }

    Line*
    find(Addr addr)
    {
        auto it = lines_.find(lineAddr(addr));
        return it == lines_.end() ? nullptr : &it->second;
    }

    bool
    allValid(const Line& line, Addr addr, unsigned size) const
    {
        Addr base = lineAddr(addr);
        for (unsigned i = 0; i < size; ++i) {
            if (!line.valid[addr - base + i])
                return false;
        }
        return true;
    }

    /** Evict LRU from addr's set if it holds assoc lines already. */
    void
    makeRoom(Addr addr)
    {
        Count set = setOf(addr);
        std::vector<std::map<Addr, Line>::iterator> residents;
        for (auto it = lines_.begin(); it != lines_.end(); ++it) {
            if (setOf(it->first) == set)
                residents.push_back(it);
        }
        if (residents.size() < config_.assoc)
            return;
        auto victim = *std::min_element(
            residents.begin(), residents.end(),
            [](auto a, auto b) {
                return a->second.lastUse < b->second.lastUse;
            });
        unsigned dirty_bytes = 0;
        for (bool d : victim->second.dirty)
            dirty_bytes += d ? 1 : 0;
        if (dirty_bytes > 0) {
            ++stats_.dirtyVictims;
            stats_.dirtyVictimDirtyBytes += dirty_bytes;
        }
        lines_.erase(victim);
    }

    Line&
    install(Addr addr, bool fully_valid)
    {
        makeRoom(addr);
        Line line;
        line.valid.assign(config_.lineBytes, fully_valid);
        line.dirty.assign(config_.lineBytes, false);
        line.lastUse = ++clock_;
        return lines_[lineAddr(addr)] = line;
    }

    void
    markBytes(Line& line, Addr addr, unsigned size, bool set_dirty)
    {
        Addr base = lineAddr(addr);
        for (unsigned i = 0; i < size; ++i) {
            line.valid[addr - base + i] = true;
            if (set_dirty)
                line.dirty[addr - base + i] = true;
        }
    }

    void
    readPiece(Addr addr, unsigned size)
    {
        ++clock_;
        if (Line* line = find(addr)) {
            line->lastUse = clock_;
            if (allValid(*line, addr, size)) {
                ++stats_.readHits;
                return;
            }
            ++stats_.readMisses;
            ++stats_.linesFetched;
            std::fill(line->valid.begin(), line->valid.end(), true);
            return;
        }
        ++stats_.readMisses;
        ++stats_.linesFetched;
        install(addr, true);
    }

    void
    writePiece(Addr addr, unsigned size)
    {
        ++clock_;
        bool write_back =
            config_.hitPolicy == core::WriteHitPolicy::WriteBack;
        if (Line* line = find(addr)) {
            ++stats_.writeHits;
            line->lastUse = clock_;
            if (write_back) {
                bool was_dirty =
                    std::find(line->dirty.begin(), line->dirty.end(),
                              true) != line->dirty.end();
                if (was_dirty)
                    ++stats_.writesToDirtyLines;
            }
            markBytes(*line, addr, size, write_back);
            return;
        }
        ++stats_.writeMisses;
        switch (config_.missPolicy) {
          case core::WriteMissPolicy::FetchOnWrite: {
            ++stats_.linesFetched;
            Line& line = install(addr, true);
            markBytes(line, addr, size, write_back);
            break;
          }
          case core::WriteMissPolicy::WriteValidate: {
            Line& line = install(addr, false);
            markBytes(line, addr, size, write_back);
            break;
          }
          case core::WriteMissPolicy::WriteAround:
            break;
          case core::WriteMissPolicy::WriteInvalidate:
            if (config_.assoc == 1) {
                // Drop whatever resides in this set.
                Count set = setOf(addr);
                for (auto it = lines_.begin(); it != lines_.end();
                     ++it) {
                    if (setOf(it->first) == set) {
                        lines_.erase(it);
                        break;
                    }
                }
            }
            break;
        }
    }

    core::CacheConfig config_;
    Count numSets_;
    std::map<Addr, Line> lines_;
    OracleStats stats_;
    Count clock_ = 0;
};

} // namespace jcache::test

#endif // JCACHE_TESTS_ORACLE_CACHE_HH
