/**
 * @file
 * Implementation of the binary trace file format.
 */

#include "trace/file_io.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/bitops.hh"
#include "util/fault.hh"
#include "util/fs.hh"
#include "util/logging.hh"

namespace jcache::trace
{

namespace
{

constexpr std::array<char, 4> kMagic = {'J', 'C', 'T', 'R'};
constexpr std::array<char, 4> kMagicCompressed = {'J', 'C', 'T', 'Z'};

/** Bytes of one raw-format record: addr + instrDelta + size + type. */
constexpr std::uint64_t kRawRecordBytes = 8 + 4 + 1 + 1;

/** Minimum bytes of one compressed record: meta + two 1-byte varints. */
constexpr std::uint64_t kMinCompressedRecordBytes = 3;

[[noreturn]] void
corrupt(const std::string& message)
{
    throw CorruptTraceError("corrupt trace file: " + message);
}

void
corruptIf(bool condition, const std::string& message)
{
    if (condition)
        corrupt(message);
}

template <typename T>
void
putLe(std::ostream& os, T value)
{
    for (unsigned i = 0; i < sizeof(T); ++i) {
        char byte = static_cast<char>((value >> (8 * i)) & 0xff);
        os.put(byte);
    }
}

template <typename T>
T
getLe(std::istream& is)
{
    T value = 0;
    for (unsigned i = 0; i < sizeof(T); ++i) {
        int byte = is.get();
        if (byte == std::char_traits<char>::eof())
            corrupt("truncated");
        value |= static_cast<T>(static_cast<std::uint8_t>(byte))
                 << (8 * i);
    }
    return value;
}

/** LEB128-style unsigned varint. */
void
putVarint(std::ostream& os, std::uint64_t value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

std::uint64_t
getVarint(std::istream& is)
{
    std::uint64_t value = 0;
    unsigned shift = 0;
    while (true) {
        int byte = is.get();
        if (byte == std::char_traits<char>::eof())
            corrupt("truncated in varint");
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            break;
        shift += 7;
        corruptIf(shift >= 64, "varint too long");
    }
    return value;
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
writeHeader(std::ostream& os, const std::array<char, 4>& magic,
            const Trace& trace)
{
    os.write(magic.data(), magic.size());
    putLe<std::uint32_t>(os, kTraceFormatVersion);
    putLe<std::uint64_t>(os, trace.size());
    putLe<std::uint32_t>(
        os, static_cast<std::uint32_t>(trace.name().size()));
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
}

} // namespace

void
writeTrace(const Trace& trace, std::ostream& os)
{
    writeHeader(os, kMagic, trace);
    for (const TraceRecord& r : trace) {
        putLe<std::uint64_t>(os, r.addr);
        putLe<std::uint32_t>(os, r.instrDelta);
        putLe<std::uint8_t>(os, r.size);
        putLe<std::uint8_t>(os, static_cast<std::uint8_t>(r.type));
    }
}

void
saveTrace(const Trace& trace, const std::string& path)
{
    fatalIf(JCACHE_FAULT("trace.write"),
            "cannot open trace file for writing: " + path);
    // Render in memory, then write-then-rename (util/fs.hh): a crash
    // or full disk never leaves a torn trace under the final name.
    std::ostringstream oss;
    writeTrace(trace, oss);
    util::atomicWriteFile(path, oss.str());
}

void
writeTraceCompressed(const Trace& trace, std::ostream& os)
{
    writeHeader(os, kMagicCompressed, trace);
    Addr prev_addr = 0;
    for (const TraceRecord& r : trace) {
        unsigned size_log2 = floorLog2(r.size);
        std::uint8_t meta = static_cast<std::uint8_t>(
            (r.type == RefType::Write ? 1 : 0) | (size_log2 << 1));
        os.put(static_cast<char>(meta));
        putVarint(os, zigzag(static_cast<std::int64_t>(r.addr) -
                             static_cast<std::int64_t>(prev_addr)));
        putVarint(os, r.instrDelta);
        prev_addr = r.addr;
    }
}

void
saveTraceCompressed(const Trace& trace, const std::string& path)
{
    fatalIf(JCACHE_FAULT("trace.write"),
            "cannot open trace file for writing: " + path);
    std::ostringstream oss;
    writeTraceCompressed(trace, oss);
    util::atomicWriteFile(path, oss.str());
}

namespace
{

/** Shared header decode for readTrace()/readTraceInfo(). */
TraceFileInfo
readHeader(std::istream& is)
{
    corruptIf(JCACHE_FAULT("trace.read.header"),
              "injected fault: torn header");

    std::array<char, 4> magic = {};
    is.read(magic.data(), magic.size());
    corruptIf(!is || (magic != kMagic && magic != kMagicCompressed),
              "not a jcache trace file");

    TraceFileInfo info;
    info.format = magic == kMagicCompressed ? "compressed" : "raw";
    info.version = getLe<std::uint32_t>(is);
    corruptIf(info.version != kTraceFormatVersion,
              "unsupported trace file version " +
                  std::to_string(info.version));

    info.records = getLe<std::uint64_t>(is);
    auto name_len = getLe<std::uint32_t>(is);
    corruptIf(name_len > kMaxTraceNameBytes,
              "unreasonable name length " + std::to_string(name_len));
    info.name.assign(name_len, '\0');
    is.read(info.name.data(), name_len);
    corruptIf(!is, "truncated in name");
    return info;
}

/**
 * Bytes left in the stream after the header, or -1 when the stream is
 * not seekable.  Lets the reader reject a header whose record count
 * the stream cannot possibly hold before allocating anything.
 */
std::int64_t
remainingBytes(std::istream& is)
{
    std::istream::pos_type here = is.tellg();
    if (here == std::istream::pos_type(-1))
        return -1;
    is.seekg(0, std::ios::end);
    std::istream::pos_type end = is.tellg();
    is.seekg(here);
    if (end == std::istream::pos_type(-1) || end < here)
        return -1;
    return static_cast<std::int64_t>(end - here);
}

} // namespace

TraceFileInfo
readTraceInfo(std::istream& is)
{
    return readHeader(is);
}

TraceFileInfo
loadTraceInfo(const std::string& path)
{
    std::ifstream ifs(path, std::ios::binary);
    fatalIf(!ifs, "cannot open trace file for reading: " + path);
    try {
        return readTraceInfo(ifs);
    } catch (const CorruptTraceError& e) {
        throw CorruptTraceError(std::string(e.what()) +
                                " [file: " + path + "]");
    }
}

Trace
readTrace(std::istream& is)
{
    TraceFileInfo info = readHeader(is);
    bool compressed = info.format == "compressed";
    std::uint64_t count = info.records;

    // Sanity-check the claimed record count against what the stream
    // actually holds: a corrupt or hostile header must fail here, not
    // as a giant allocation or a short read mistaken for success.
    std::int64_t remaining = remainingBytes(is);
    if (remaining >= 0) {
        auto avail = static_cast<std::uint64_t>(remaining);
        if (compressed) {
            corruptIf(count > avail / kMinCompressedRecordBytes,
                      "header claims " + std::to_string(count) +
                          " records but only " + std::to_string(avail) +
                          " bytes follow");
        } else {
            corruptIf(count > avail / kRawRecordBytes,
                      "header claims " + std::to_string(count) +
                          " records but only " + std::to_string(avail) +
                          " bytes follow");
            corruptIf(count * kRawRecordBytes != avail,
                      std::to_string(avail - count * kRawRecordBytes) +
                          " trailing bytes after the last record");
        }
    }

    Trace trace(info.name);
    // With an unseekable stream the count is unverified; cap the
    // upfront reservation and let append() grow past it if the data
    // really is there.
    constexpr std::uint64_t kMaxBlindReserve = 1u << 20;
    trace.reserve(remaining >= 0 ? count
                                 : std::min(count, kMaxBlindReserve));
    Addr prev_addr = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        corruptIf(JCACHE_FAULT("trace.read.record"),
                  "injected fault: short record " + std::to_string(i));
        TraceRecord r;
        if (compressed) {
            auto meta = getLe<std::uint8_t>(is);
            r.type = (meta & 1) ? RefType::Write : RefType::Read;
            r.size = static_cast<std::uint8_t>(1u << ((meta >> 1) &
                                                      0x3));
            r.addr = static_cast<Addr>(
                static_cast<std::int64_t>(prev_addr) +
                unzigzag(getVarint(is)));
            auto delta = getVarint(is);
            corruptIf(delta > 0xffffffffull,
                      "instruction delta out of range");
            r.instrDelta = static_cast<std::uint32_t>(delta);
            prev_addr = r.addr;
        } else {
            r.addr = getLe<std::uint64_t>(is);
            r.instrDelta = getLe<std::uint32_t>(is);
            r.size = getLe<std::uint8_t>(is);
            r.type = static_cast<RefType>(getLe<std::uint8_t>(is));
        }
        trace.append(r);
    }
    validate(trace);
    return trace;
}

Trace
loadTrace(const std::string& path)
{
    std::ifstream ifs(path, std::ios::binary);
    fatalIf(!ifs, "cannot open trace file for reading: " + path);
    try {
        return readTrace(ifs);
    } catch (const CorruptTraceError& e) {
        // The stream-level reader reports record indices and offsets;
        // only here is the file path known, so attach it on the way
        // out — a corrupt trace in a sweep over dozens of files must
        // name which one.
        throw CorruptTraceError(std::string(e.what()) +
                                " [file: " + path + "]");
    }
}

} // namespace jcache::trace
