file(REMOVE_RECURSE
  "libjcache.a"
)
