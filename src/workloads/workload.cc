/**
 * @file
 * Workload registry and trace generation.
 */

#include "workloads/workload.hh"

#include "trace/recorder.hh"
#include "util/logging.hh"
#include "workloads/bfs.hh"
#include "workloads/ccom.hh"
#include "workloads/grr.hh"
#include "workloads/kvstore.hh"
#include "workloads/linpack.hh"
#include "workloads/liver.hh"
#include "workloads/marksweep.hh"
#include "workloads/met.hh"
#include "workloads/yacc.hh"

namespace jcache::workloads
{

trace::Trace
generateTrace(const Workload& workload)
{
    trace::TraceRecorder recorder(workload.name());
    workload.run(recorder);
    return recorder.take();
}

const std::vector<std::string>&
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "ccom", "grr", "yacc", "met", "linpack", "liver",
    };
    return names;
}

const std::vector<std::string>&
productionNames()
{
    static const std::vector<std::string> names = {
        "kvstore", "bfs", "marksweep",
    };
    return names;
}

const std::vector<std::string>&
allWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = benchmarkNames();
        const std::vector<std::string>& extra = productionNames();
        all.insert(all.end(), extra.begin(), extra.end());
        return all;
    }();
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string& name, const WorkloadConfig& config)
{
    if (name == "ccom")
        return std::make_unique<CcomWorkload>(config);
    if (name == "grr")
        return std::make_unique<GrrWorkload>(config);
    if (name == "yacc")
        return std::make_unique<YaccWorkload>(config);
    if (name == "met")
        return std::make_unique<MetWorkload>(config);
    if (name == "linpack")
        return std::make_unique<LinpackWorkload>(config);
    if (name == "liver")
        return std::make_unique<LiverWorkload>(config);
    if (name == "kvstore")
        return std::make_unique<KvStoreWorkload>(config);
    if (name == "bfs")
        return std::make_unique<BfsWorkload>(config);
    if (name == "marksweep")
        return std::make_unique<MarkSweepWorkload>(config);
    fatal("unknown workload: " + name);
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads(const WorkloadConfig& config)
{
    std::vector<std::unique_ptr<Workload>> all;
    for (const std::string& name : benchmarkNames())
        all.push_back(makeWorkload(name, config));
    return all;
}

} // namespace jcache::workloads
