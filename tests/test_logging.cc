/**
 * @file
 * Unit tests for util/logging: fatal() error reporting.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace jcache
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, FatalPreservesMessage)
{
    try {
        fatal("line size must be a power of two");
        FAIL() << "fatal() returned";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "line size must be a power of two");
    }
}

TEST(Logging, FatalIfOnlyThrowsWhenConditionHolds)
{
    EXPECT_NO_THROW(fatalIf(false, "should not throw"));
    EXPECT_THROW(fatalIf(true, "should throw"), FatalError);
}

TEST(Logging, FatalErrorIsARuntimeError)
{
    // Callers may catch the standard hierarchy.
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

} // namespace
} // namespace jcache
