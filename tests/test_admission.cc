/**
 * @file
 * Tests for the CoDel-style admission controller
 * (service/admission.hh).  Time is injected, so every arming and
 * dropping transition is driven deterministically from a synthetic
 * clock — no sleeps, no real queue.
 */

#include <chrono>
#include <gtest/gtest.h>

#include "service/admission.hh"

using jcache::service::AdmissionConfig;
using jcache::service::AdmissionController;
using jcache::service::AdmissionMode;
using jcache::service::AdmissionState;

namespace
{

using Clock = AdmissionController::Clock;

/** A fixed origin plus a millisecond offset: the synthetic clock. */
Clock::time_point
at(double millis)
{
    static const Clock::time_point origin = Clock::now();
    return origin +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double, std::milli>(millis));
}

/** target 50ms / interval 100ms: transitions stay easy to stage. */
AdmissionConfig
testConfig()
{
    AdmissionConfig config;
    config.targetMillis = 50.0;
    config.intervalMillis = 100.0;
    return config;
}

} // namespace

TEST(AdmissionMode, ParsesAndNamesRoundTrip)
{
    auto codel = jcache::service::parseAdmissionMode("codel");
    ASSERT_TRUE(codel.has_value());
    EXPECT_EQ(*codel, AdmissionMode::Codel);
    EXPECT_EQ(jcache::service::name(*codel), "codel");

    auto cap = jcache::service::parseAdmissionMode("queue-cap");
    ASSERT_TRUE(cap.has_value());
    EXPECT_EQ(*cap, AdmissionMode::QueueCap);
    EXPECT_EQ(jcache::service::name(*cap), "queue-cap");

    EXPECT_FALSE(
        jcache::service::parseAdmissionMode("codel ").has_value());
    EXPECT_FALSE(
        jcache::service::parseAdmissionMode("drop").has_value());
    EXPECT_FALSE(jcache::service::parseAdmissionMode("").has_value());
}

TEST(AdmissionController, NeverShedsBelowTarget)
{
    AdmissionController controller(testConfig());
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(
            controller.shouldShed(0.010, 10, at(i * 10.0)));
    AdmissionState state = controller.state();
    EXPECT_FALSE(state.dropping);
    EXPECT_EQ(state.totalDropped, 0u);
    EXPECT_NEAR(state.windowP50Millis, 10.0, 1e-9);
}

TEST(AdmissionController, ArmsThenDropsAfterOneInterval)
{
    AdmissionController controller(testConfig());
    // First above-target median only arms the controller.
    EXPECT_FALSE(controller.shouldShed(0.200, 5, at(0)));
    // Still above, but the interval has not elapsed yet.
    EXPECT_FALSE(controller.shouldShed(0.200, 5, at(50)));
    EXPECT_FALSE(controller.state().dropping);
    // One full interval above target: dropping starts.
    EXPECT_TRUE(controller.shouldShed(0.200, 5, at(100)));
    AdmissionState state = controller.state();
    EXPECT_TRUE(state.dropping);
    EXPECT_EQ(state.dropCount, 1u);
    EXPECT_EQ(state.totalDropped, 1u);
}

TEST(AdmissionController, DropCountGrowsWhileOverloadPersists)
{
    AdmissionController controller(testConfig());
    controller.shouldShed(0.200, 5, at(0));
    controller.shouldShed(0.200, 5, at(100));
    for (std::uint64_t i = 2; i <= 6; ++i) {
        EXPECT_TRUE(
            controller.shouldShed(0.200, 5, at(100.0 + i)));
        EXPECT_EQ(controller.dropCount(), i);
    }
    EXPECT_EQ(controller.state().totalDropped, 6u);
}

TEST(AdmissionController, RecoveryResetsTheEpisode)
{
    AdmissionController controller(testConfig());
    controller.shouldShed(0.200, 5, at(0));
    EXPECT_TRUE(controller.shouldShed(0.200, 5, at(100)));

    // A run of fast dequeues pulls the window median back under
    // target (old samples also age out past the interval): the
    // controller must leave dropping and forget its drop count.
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(
            controller.shouldShed(0.001, 5, at(210.0 + i)));
    AdmissionState state = controller.state();
    EXPECT_FALSE(state.dropping);
    EXPECT_EQ(state.dropCount, 0u);
    EXPECT_EQ(state.totalDropped, 1u);

    // A fresh overload (after the fast samples age out) must re-arm
    // and wait out a full interval again before the next shed.
    EXPECT_FALSE(controller.shouldShed(0.200, 5, at(330)));
    EXPECT_FALSE(controller.shouldShed(0.200, 5, at(380)));
    EXPECT_TRUE(controller.shouldShed(0.200, 5, at(430)));
}

TEST(AdmissionController, NeverShedsTheLastJob)
{
    AdmissionController controller(testConfig());
    controller.shouldShed(0.200, 5, at(0));
    // Dropping state is due, but nothing waits behind this job:
    // running it beats bouncing it, always.
    EXPECT_FALSE(controller.shouldShed(0.200, 0, at(100)));
    EXPECT_FALSE(controller.shouldShed(0.200, 0, at(101)));
    EXPECT_EQ(controller.state().totalDropped, 0u);
    // The moment a backlog exists again, the shed goes through.
    EXPECT_TRUE(controller.shouldShed(0.200, 1, at(102)));
}

TEST(AdmissionController, QueueCapModeSamplesButNeverSheds)
{
    AdmissionConfig config = testConfig();
    config.mode = AdmissionMode::QueueCap;
    AdmissionController controller(config);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(
            controller.shouldShed(0.500, 20, at(i * 10.0)));
    AdmissionState state = controller.state();
    EXPECT_FALSE(state.dropping);
    EXPECT_EQ(state.totalDropped, 0u);
    // The window still tracks sojourns for stats.
    EXPECT_NEAR(state.windowP50Millis, 500.0, 1e-9);
    EXPECT_GT(state.windowSamples, 0u);
}

TEST(AdmissionController, UpperMedianSeesOneSlowJobOfTwo)
{
    AdmissionController controller(testConfig());
    // One fast and one slow sample: the upper median reports the
    // slow one, so a 50/50 split already reads as over target.
    controller.shouldShed(0.001, 1, at(0));
    controller.shouldShed(0.400, 1, at(1));
    EXPECT_NEAR(controller.state().windowP50Millis, 400.0, 1e-9);
}

TEST(AdmissionController, WindowAgesOutStaleSamples)
{
    AdmissionController controller(testConfig());
    // A burst of slow samples, then silence.  The next sample lands
    // more than one interval later: the stale ones must be gone and
    // the median must reflect only the fresh, fast sample.
    for (int i = 0; i < 10; ++i)
        controller.shouldShed(0.300, 5, at(i));
    EXPECT_FALSE(controller.shouldShed(0.001, 5, at(500)));
    AdmissionState state = controller.state();
    EXPECT_EQ(state.windowSamples, 1u);
    EXPECT_NEAR(state.windowP50Millis, 1.0, 1e-9);
    EXPECT_FALSE(state.dropping);
}

TEST(AdmissionController, WindowIsBoundedBySampleCount)
{
    AdmissionConfig config = testConfig();
    config.windowSamples = 4;
    // A huge interval so only the count bound trims.
    config.intervalMillis = 1e9;
    AdmissionController controller(config);
    for (int i = 0; i < 100; ++i)
        controller.shouldShed(0.010, 5, at(i));
    EXPECT_EQ(controller.state().windowSamples, 4u);
}
