/**
 * @file
 * Tests for the readiness event loop (net/reactor.hh): fd
 * registration and dispatch, interest changes, cross-thread post()
 * wakeup, and the poll fallback backend selected by JCACHE_NET_POLL.
 */

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/reactor.hh"
#include "net/socket.hh"

using namespace jcache::net;

namespace
{

/** A connected local socket pair to drive readiness with. */
std::pair<Socket, Socket>
makePair()
{
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    return {Socket(fds[0]), Socket(fds[1])};
}

/**
 * Run the decorated body under both backends.  The poll fallback is
 * selected per-Reactor at construction via the environment, so each
 * iteration builds its reactors after flipping the variable.
 */
class ReactorBackends : public ::testing::TestWithParam<const char*>
{
  protected:
    void SetUp() override
    {
        if (std::string(GetParam()) == "poll")
            ::setenv("JCACHE_NET_POLL", "1", 1);
        else
            ::unsetenv("JCACHE_NET_POLL");
    }

    void TearDown() override { ::unsetenv("JCACHE_NET_POLL"); }
};

} // namespace

TEST_P(ReactorBackends, ReportsSelectedBackend)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    EXPECT_EQ(std::string(reactor.backend()), GetParam());
}

TEST_P(ReactorBackends, DispatchesReadableFd)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    auto [a, b] = makePair();

    unsigned seen = 0;
    int dispatches = 0;
    ASSERT_TRUE(reactor.add(b.fd(), kReadable, [&](unsigned events) {
        seen = events;
        ++dispatches;
    }));

    // Nothing pending: a short wait dispatches nothing.
    EXPECT_EQ(reactor.runOnce(10), 0u);
    EXPECT_EQ(dispatches, 0);

    ASSERT_TRUE(a.writeAll("x", 1).ok());
    EXPECT_GE(reactor.runOnce(1000), 1u);
    EXPECT_EQ(dispatches, 1);
    EXPECT_TRUE(seen & kReadable);
}

TEST_P(ReactorBackends, SetInterestMasksReadiness)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    auto [a, b] = makePair();

    int dispatches = 0;
    ASSERT_TRUE(reactor.add(b.fd(), kReadable,
                            [&](unsigned) { ++dispatches; }));
    ASSERT_TRUE(a.writeAll("x", 1).ok());

    // Drop read interest: the pending byte must not dispatch.
    ASSERT_TRUE(reactor.setInterest(b.fd(), 0));
    reactor.runOnce(20);
    EXPECT_EQ(dispatches, 0);

    // Restore it: now it does.
    ASSERT_TRUE(reactor.setInterest(b.fd(), kReadable));
    reactor.runOnce(1000);
    EXPECT_EQ(dispatches, 1);
}

TEST_P(ReactorBackends, WritableInterestFiresImmediately)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    auto [a, b] = makePair();
    (void)a;

    unsigned seen = 0;
    ASSERT_TRUE(reactor.add(b.fd(), kWritable,
                            [&](unsigned events) { seen = events; }));
    // An idle socket's send buffer has room, so this is level-
    // triggered instant readiness.
    EXPECT_GE(reactor.runOnce(1000), 1u);
    EXPECT_TRUE(seen & kWritable);
}

TEST_P(ReactorBackends, RemoveStopsDispatch)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    auto [a, b] = makePair();

    int dispatches = 0;
    ASSERT_TRUE(reactor.add(b.fd(), kReadable,
                            [&](unsigned) { ++dispatches; }));
    ASSERT_TRUE(a.writeAll("x", 1).ok());
    reactor.remove(b.fd());
    reactor.runOnce(20);
    EXPECT_EQ(dispatches, 0);
}

TEST_P(ReactorBackends, RemoveInsideOwnCallbackIsSafe)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    auto [a, b] = makePair();

    int dispatches = 0;
    ASSERT_TRUE(reactor.add(b.fd(), kReadable, [&](unsigned) {
        ++dispatches;
        reactor.remove(b.fd());
    }));
    ASSERT_TRUE(a.writeAll("xy", 2).ok());
    reactor.runOnce(1000);
    // The byte is still unread, but the fd is gone: no redispatch.
    reactor.runOnce(20);
    EXPECT_EQ(dispatches, 1);
}

TEST_P(ReactorBackends, PostRunsOnLoopIteration)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    int ran = 0;
    reactor.post([&] { ++ran; });
    reactor.post([&] { ++ran; });
    reactor.runOnce(0);
    EXPECT_EQ(ran, 2);
}

TEST_P(ReactorBackends, PostFromAnotherThreadWakesWait)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    int ran = 0;
    std::thread poster([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        reactor.post([&] { ++ran; });
    });
    // Without the self-pipe wakeup this blocks the full 10 seconds
    // and the test times out; with it, the post lands promptly.
    auto start = std::chrono::steady_clock::now();
    while (ran == 0 &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(10))
        reactor.runOnce(10000);
    poster.join();
    EXPECT_EQ(ran, 1);
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(5));
}

TEST_P(ReactorBackends, HangupReported)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());
    auto [a, b] = makePair();

    unsigned seen = 0;
    ASSERT_TRUE(reactor.add(b.fd(), kReadable,
                            [&](unsigned events) { seen |= events; }));
    a.close();
    reactor.runOnce(1000);
    // Peer closure surfaces as readable EOF and/or an explicit
    // hangup bit depending on backend; either is actionable.
    EXPECT_TRUE(seen & (kReadable | kHangup));
}

TEST_P(ReactorBackends, ManyFdsDispatchIndependently)
{
    Reactor reactor;
    ASSERT_TRUE(reactor.valid());

    constexpr int kPairs = 8;
    std::vector<std::pair<Socket, Socket>> pairs;
    std::vector<int> hits(kPairs, 0);
    for (int i = 0; i < kPairs; ++i) {
        pairs.push_back(makePair());
        ASSERT_TRUE(reactor.add(pairs[i].second.fd(), kReadable,
                                [&hits, i](unsigned) { ++hits[i]; }));
    }
    // Make only the even-numbered sockets readable.
    for (int i = 0; i < kPairs; i += 2)
        ASSERT_TRUE(pairs[i].first.writeAll("x", 1).ok());

    std::size_t dispatched = 0;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
    while (dispatched < kPairs / 2 &&
           std::chrono::steady_clock::now() < deadline)
        dispatched += reactor.runOnce(100);
    for (int i = 0; i < kPairs; ++i)
        EXPECT_EQ(hits[i], i % 2 == 0 ? 1 : 0) << "pair " << i;
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackends,
                         ::testing::Values("epoll", "poll"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });
