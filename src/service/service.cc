/**
 * @file
 * Implementation of the request router and job queue.
 */

#include "service/service.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "service/json_value.hh"
#include "service/render.hh"
#include "stats/json.hh"
#include "store/key.hh"
#include "trace/import.hh"
#include "trace/trace.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace_writer.hh"
#include "util/digest.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/version.hh"

namespace jcache::service
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Bump the armed-only per-type request counter. */
void
countRequest(const std::string& type)
{
    if (!telemetry::armed())
        return;
    telemetry::Registry::instance()
        .counter("jcache_requests_total",
                 "Requests handled, by request type",
                 {{"type", type}})
        .inc();
}


/** An `ok: false` response with a machine-readable code. */
std::string
errorResponse(const std::string& code, const std::string& message,
              const std::string& request_id = "")
{
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("ok", false);
    json.field("code", code);
    json.field("error", message);
    if (!request_id.empty())
        json.field("request_id", request_id);
    json.endObject();
    return oss.str();
}

/** The `busy` shed response, with its client back-off hint. */
std::string
busyResponse(unsigned retry_after_millis,
             const std::string& request_id)
{
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("ok", false);
    json.field("code", "busy");
    json.field("error", "job queue is overloaded; retry later");
    json.field("retry_after_ms",
               static_cast<double>(retry_after_millis));
    if (!request_id.empty())
        json.field("request_id", request_id);
    json.endObject();
    return oss.str();
}

/**
 * The `deadline_exceeded` shed response: the client's budget lapsed
 * before the job could run, so the answer would arrive too late to
 * matter.  Distinct from `busy` — retrying with the same budget is
 * pointless unless the queue has drained, and a client tracking a
 * total deadline should usually give up instead.
 */
std::string
deadlineResponse(double waited_millis, const std::string& request_id)
{
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("ok", false);
    json.field("code", "deadline_exceeded");
    json.field("error",
               "deadline expired before the job could run");
    json.field("waited_ms", waited_millis);
    if (!request_id.empty())
        json.field("request_id", request_id);
    json.endObject();
    return oss.str();
}

/** Bump the armed-only shed counter, labeled by reason. */
void
countShed(const char* reason)
{
    if (!telemetry::armed())
        return;
    telemetry::Registry::instance()
        .counter("jcache_jobs_shed_total",
                 "Jobs shed instead of run, by reason",
                 {{"reason", reason}})
        .inc();
}

/** splitmix64: the jitter stream behind retry_after_ms. */
std::uint64_t
mixJitter(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * A request's deadline, resolved against its arrival instant.
 * `at` stays zero when the request carries no deadline_ms.
 */
struct RequestDeadline
{
    Clock::time_point at{};
    bool expired = false;
};

std::chrono::steady_clock::duration
millisDuration(double millis)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(millis));
}

/** An `ok: true` envelope around a serialized result payload. */
std::string
okResponse(const std::string& type, const std::string& digest,
           bool cached, const std::string& payload,
           const std::string& request_id = "")
{
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("ok", true);
    json.field("type", type);
    json.field("digest", digest);
    json.field("cached", cached);
    if (!request_id.empty())
        json.field("request_id", request_id);
    json.rawField("payload", payload);
    json.endObject();
    return oss.str();
}

/**
 * Resolve a request's optional deadline_ms budget against its
 * arrival instant.  A missing field means no deadline; a present but
 * non-positive (or non-numeric) budget is already expired.
 */
RequestDeadline
parseDeadline(const JsonValue& request, Clock::time_point received)
{
    RequestDeadline deadline;
    if (!request.has("deadline_ms"))
        return deadline;
    double millis = request.getNumber("deadline_ms", 0.0);
    if (millis <= 0.0) {
        deadline.expired = true;
        return deadline;
    }
    deadline.at = received + millisDuration(millis);
    return deadline;
}

/**
 * Collapse a report's per-cell failures into one error message; the
 * caller throws it so the submitter sees a `bad_request`, never a
 * payload silently built from partial results.
 */
/**
 * The request's trace reference: the API 1.4 `trace_ref` spec when
 * present, else the legacy `workload` name.  Path refs are refused —
 * the wire must never name server-side files.
 */
sim::TraceRef
parseTraceRef(const JsonValue& request, const char* type)
{
    std::string spec = request.getString("trace_ref");
    if (spec.empty())
        spec = request.getString("workload");
    fatalIf(spec.empty(),
            std::string(type) +
                " request needs a 'trace_ref' (or a 'workload' name)");
    std::optional<sim::TraceRef> ref = sim::TraceRef::parse(spec);
    fatalIf(!ref, "malformed trace reference: '" + spec + "'");
    fatalIf(ref->kind() == sim::TraceRef::Kind::Path,
            "this daemon accepts name: and digest: trace references, "
            "not paths");
    return *ref;
}

std::string
describeFailures(const sim::SweepReport& report)
{
    std::ostringstream oss;
    oss << report.failures.size() << " of " << report.jobs()
        << " grid cells failed:";
    for (const sim::JobFailure& f : report.failures)
        oss << " [" << f.index << "] " << f.message << ';';
    std::string text = oss.str();
    text.pop_back();
    return text;
}

/** TraceRepository wiring of one daemon: registry + uploads +
 * optional mapped tier; the wire never names server-side paths. */
sim::TraceRepository::Config
repoConfig(const ServiceConfig& config, const sim::TraceSet& traces)
{
    sim::TraceRepository::Config rc;
    rc.registry = &traces;
    rc.generateUnknownNames = false;
    rc.allowPaths = false;
    rc.cacheDir = config.traceCacheDir;
    rc.uploadCapacity = config.uploadTraceCapacity;
    return rc;
}

} // namespace

Service::Service(const ServiceConfig& config)
    : config_(config),
      traces_(config.traces ? *config.traces
                            : sim::TraceSet::extended()),
      executorThreads_(config.executorThreads == 0
                           ? sim::defaultJobs()
                           : config.executorThreads),
      cache_(config.cacheCapacity),
      repo_(repoConfig(config, traces_)),
      admission_(config.admission),
      start_(Clock::now())
{
    if (!config_.storeDir.empty()) {
        store::StoreConfig store_config;
        store_config.dir = config_.storeDir;
        store_config.capBytes = config_.storeCapBytes;
        store_ = std::make_unique<store::ResultStore>(store_config);
    }
    if (!config_.shard.workers.empty())
        shard_ = std::make_unique<ShardPool>(config_.shard);
    scheduler_ = std::thread([this] { schedulerLoop(); });
}

Service::~Service()
{
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        stopping_.store(true);
    }
    queue_cv_.notify_all();
    if (scheduler_.joinable())
        scheduler_.join();
}

void
Service::schedulerLoop()
{
    for (;;) {
        Job job;
        std::size_t queued_behind = 0;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] {
                return stopping_.load() || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ with a non-empty queue still drains: an
                // accepted job must complete or its submitter hangs.
                return;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            queued_behind = queue_.size();
        }
        // The queue wait (sojourn) starts on the submitter's thread
        // and ends here: it feeds the wait histogram, the queue-wait
        // span, the CoDel controller, and the deadline check.
        Clock::time_point now = Clock::now();
        double sojourn_seconds =
            std::chrono::duration<double>(now - job.submitted)
                .count();
        if (sojourn_seconds < 0.0)
            sojourn_seconds = 0.0;
        queueWait_.observe(sojourn_seconds);
        if (telemetry::armed()) {
            static telemetry::Histogram& wait =
                telemetry::Registry::instance().histogram(
                    "jcache_job_queue_wait_seconds",
                    "Queue sojourn of one job, admission to dequeue");
            wait.observe(sojourn_seconds);
        }
        if (telemetry::tracing())
            telemetry::recordSpan("job.queue_wait", "service",
                                  job.submitted, now);

        // The controller samples every dequeue (both modes); the
        // deadline verdict overrides its shed because a lapsed job
        // is dead work no matter how the queue is doing.
        bool codel_shed = admission_.shouldShed(
            sojourn_seconds, queued_behind, now);
        if (job.deadline.time_since_epoch().count() != 0 &&
            now >= job.deadline) {
            shedAtDequeue(job, "deadline_exceeded", 0,
                          sojourn_seconds * 1000.0);
            continue;
        }
        if (codel_shed) {
            // The CoDel control law: consecutive sheds invite retries
            // back progressively sooner instead of piling everyone
            // onto the full nominal back-off.
            double scale =
                1.0 /
                std::sqrt(static_cast<double>(
                    std::max<std::uint64_t>(1, admission_.dropCount())));
            shedAtDequeue(job, "busy", retryAfterMillis(scale),
                          sojourn_seconds * 1000.0);
            continue;
        }
        if (JCACHE_FAULT("service.delay")) {
            // Chaos/regression hook: make this job observably slow so
            // shutdown-drain races have a window to land in.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(300));
        }
        Clock::time_point start = Clock::now();
        {
            telemetry::Span run_span("job.run", "service");
            try {
                job.outcome.payload = job.work();
            } catch (const ShardError& e) {
                job.outcome.error = e.what();
                job.outcome.errorCode = e.code();
            } catch (const FatalError& e) {
                job.outcome.error = e.what();
            } catch (const std::exception& e) {
                job.outcome.error =
                    std::string("internal error: ") + e.what();
            }
        }
        // Account the job before completing it: a stats request
        // issued right after a run must already see it.
        double seconds =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        jobWall_.observe(seconds);
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++jobsExecuted_;
        }
        if (telemetry::armed()) {
            static telemetry::Counter& jobs =
                telemetry::Registry::instance().counter(
                    "jcache_jobs_executed_total",
                    "Simulation jobs drained from the queue");
            jobs.inc();
        }
        job.complete(std::move(job.outcome));
    }
}

void
Service::shedAtDequeue(Job& job, const std::string& code,
                       unsigned retry_after_millis,
                       double waited_millis)
{
    job.outcome.shedCode = code;
    job.outcome.retryAfterMillis = retry_after_millis;
    job.outcome.waitedMillis = waited_millis;
    bool deadline = code == "deadline_exceeded";
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        if (deadline)
            ++shedDeadline_;
        else
            ++shedCodel_;
    }
    countShed(deadline ? "deadline" : "codel");
    job.complete(std::move(job.outcome));
}

void
Service::recordJobTiming(double job_seconds,
                         const sim::SweepReport& report)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    jobBusySeconds_ += report.busySeconds();
    jobGridSeconds_ += job_seconds;
}

bool
Service::submitAsync(std::function<std::string()> work,
                     std::function<void(JobOutcome&&)> complete,
                     std::chrono::steady_clock::time_point deadline)
{
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_.load() ||
            queue_.size() >= config_.queueCapacity ||
            JCACHE_FAULT("service.admit")) {
            countShed("queue_cap");
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++rejectedBusy_;
            return false;
        }
        Job job;
        job.work = std::move(work);
        job.complete = std::move(complete);
        job.submitted = Clock::now();
        job.deadline = deadline;
        queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
    return true;
}

std::vector<sim::RunResult>
Service::executeCells(const sim::ResolvedTrace& resolved,
                      const sim::TraceRef& ref,
                      const std::vector<core::CacheConfig>& configs,
                      bool flush,
                      std::chrono::steady_clock::time_point deadline)
{
    Clock::time_point start = Clock::now();
    if (shard_) {
        // Coordinator: the grid runs on the workers, which resolve
        // the forwarded ref themselves.  Timing still lands in the
        // job histogram (scatter wall time is the coordinator's job
        // wall time); busySeconds stays zero since no local executor
        // ran.
        std::vector<sim::RunResult> results =
            shard_->execute(ref, flush, configs, deadline);
        recordJobTiming(
            std::chrono::duration<double>(Clock::now() - start)
                .count(),
            sim::SweepReport{});
        return results;
    }
    std::vector<sim::Request> requests;
    requests.reserve(configs.size());
    for (const core::CacheConfig& c : configs)
        requests.push_back({resolved.trace.get(), c, flush,
                            resolved.source.get()});
    sim::BatchOptions options;
    options.engine = config_.engine;
    options.jobs = executorThreads_;
    sim::BatchOutcome batch = sim::runBatch(requests, options);
    recordJobTiming(
        std::chrono::duration<double>(Clock::now() - start).count(),
        batch.report);
    fatalIf(!batch.ok(), describeFailures(batch.report));
    return std::move(batch.results);
}

sim::ResolvedTrace
Service::resolveRef(const sim::TraceRef& ref)
{
    // The per-cell engine replays trace::Trace records directly, so
    // a mapped-only resolution must be decoded up front.
    if (config_.engine == sim::Engine::PerCell && !shard_)
        return repo_.resolveMaterialized(ref);
    return repo_.resolve(ref);
}

std::optional<std::string>
Service::cacheLookup(const std::string& digest)
{
    telemetry::Span lookup_span("cache.lookup", "service");
    auto hit = cache_.lookup(digest);
    if (hit) {
        lookup_span.arg("hit", "memory");
        return hit;
    }
    if (store_) {
        auto disk = store_->get(digest);
        if (disk) {
            // Promote: the next lookup of this key is a memory hit.
            cache_.insert(digest, *disk);
            lookup_span.arg("hit", "disk");
            return disk;
        }
    }
    lookup_span.arg("hit", "false");
    return std::nullopt;
}

void
Service::cacheInsert(const std::string& digest,
                     const std::string& payload)
{
    cache_.insert(digest, payload);
    if (store_)
        store_->put(digest, payload);
}

std::size_t
Service::queueDepth() const
{
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.size();
}

ServiceSnapshot
Service::snapshot() const
{
    // One consistent view for stats, health and the metrics scrape:
    // each subsystem is sampled through its own lock (ResultCache,
    // ResultStore and the histograms are internally synchronized),
    // and every stats_mutex_-guarded counter is read under a single
    // acquisition, so a scrape never mixes counters from before and
    // after a concurrent job's accounting.
    ServiceSnapshot snap;
    snap.cache = cache_.stats();
    if (store_) {
        snap.storeEnabled = true;
        snap.store = store_->stats();
    }
    snap.queueDepth = queueDepth();
    snap.queueCapacity = config_.queueCapacity;
    snap.jobWallP50Seconds = jobWall_.percentile(50.0);
    snap.jobWallP90Seconds = jobWall_.percentile(90.0);
    snap.jobWallP99Seconds = jobWall_.percentile(99.0);
    snap.jobWallMaxSeconds = jobWall_.max();
    snap.queueWaitP50Seconds = queueWait_.percentile(50.0);
    snap.queueWaitP99Seconds = queueWait_.percentile(99.0);
    snap.queueWaitMaxSeconds = queueWait_.max();
    snap.admissionMode = admission_.config().mode;
    snap.admissionTargetMillis = admission_.config().targetMillis;
    snap.admissionIntervalMillis = admission_.config().intervalMillis;
    snap.admission = admission_.state();
    snap.role = shard_ ? "coordinator" : "single";
    if (shard_)
        snap.workers = shard_->health();
    snap.connectionsOpen =
        connectionsOpen_.load(std::memory_order_relaxed);
    snap.connectionsAccepted =
        connectionsAccepted_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snap.requests = requests_;
    snap.runRequests = runRequests_;
    snap.sweepRequests = sweepRequests_;
    snap.batchRequests = batchRequests_;
    snap.uploadRequests = uploadRequests_;
    snap.statsRequests = statsRequests_;
    snap.healthRequests = healthRequests_;
    snap.pingRequests = pingRequests_;
    snap.errors = errors_;
    snap.protocolErrors = protocolErrors_;
    snap.rejectedBusy = rejectedBusy_;
    snap.shedCodel = shedCodel_;
    snap.shedDeadline = shedDeadline_;
    snap.jobsExecuted = jobsExecuted_;
    snap.jobBusySeconds = jobBusySeconds_;
    snap.jobGridSeconds = jobGridSeconds_;
    snap.uptimeSeconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    return snap;
}

void
Service::noteProtocolError()
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++protocolErrors_;
}

void
Service::noteConnectionAccepted()
{
    connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
    connectionsOpen_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::armed()) {
        static telemetry::Counter& accepted =
            telemetry::Registry::instance().counter(
                "jcache_connections_accepted_total",
                "Transport connections accepted since start");
        accepted.inc();
    }
}

void
Service::noteConnectionClosed()
{
    connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
}

std::string
Service::handle(const std::string& request_json)
{
    // The blocking shape, rebuilt over the async one: park this
    // thread until the completion fires.  Thread-per-connection
    // transports and tests keep their call-and-wait contract; only
    // the reactor uses handleAsync directly.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    bool finished = false;
    std::string response;
    handleAsync(request_json, [&](std::string text) {
        {
            std::lock_guard<std::mutex> lock(done_mutex);
            response = std::move(text);
            finished = true;
        }
        done_cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return finished; });
    return response;
}

void
Service::handleAsync(const std::string& request_json,
                     ResponseCallback done)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++requests_;
    }

    // The handlers take the callback by value; sharing it keeps the
    // catch blocks below able to answer a request whose handler threw
    // during parsing, after the callback was already moved onward.
    auto done_ptr = std::make_shared<ResponseCallback>(std::move(done));
    ResponseCallback reply = [done_ptr](std::string response) {
        (*done_ptr)(std::move(response));
    };

    std::string parse_error;
    JsonValue request = JsonValue::parse(request_json, &parse_error);
    if (!parse_error.empty() || !request.isObject()) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++errors_;
        }
        reply(errorResponse(
            "parse_error",
            parse_error.empty() ? "request must be a JSON object"
                                : parse_error));
        return;
    }

    std::string request_id = request.getString("request_id");

    double protocol = request.getNumber(
        "protocol", static_cast<double>(kProtocolVersion));
    if (protocol != static_cast<double>(kProtocolVersion)) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++errors_;
        }
        reply(errorResponse(
            "protocol_mismatch",
            "daemon speaks protocol " +
                std::to_string(kProtocolVersion),
            request_id));
        return;
    }

    // The API version rides inside the protocol: absent means a
    // client predating the handshake (accepted), a matching major
    // means additive-compatible, any other major is refused with a
    // typed error rather than a downstream parse failure.
    if (request.has("api_version")) {
        const JsonValue& api = request.get("api_version");
        unsigned major = 0;
        bool parsed = false;
        if (api.isString() && !api.string().empty()) {
            const std::string& text = api.string();
            std::size_t k = 0;
            while (k < text.size() && text[k] >= '0' &&
                   text[k] <= '9') {
                major = major * 10 + (text[k] - '0');
                ++k;
            }
            parsed = k > 0 && (k == text.size() || text[k] == '.');
        }
        if (!parsed || major != kApiVersionMajor) {
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++errors_;
            }
            reply(errorResponse(
                "unsupported_version",
                "daemon speaks api version " +
                    std::string(kApiVersion) +
                    "; compatible requests declare major " +
                    std::to_string(kApiVersionMajor),
                request_id));
            return;
        }
    }

    std::string type = request.getString("type");
    // Label values come from a fixed vocabulary: an unrecognized type
    // counts as "unknown" so untrusted input cannot mint label sets.
    bool known = type == "run" || type == "sweep" ||
                 type == "batch" || type == "upload" ||
                 type == "stats" || type == "health" ||
                 type == "ping" || type == "shutdown";
    countRequest(known ? type : "unknown");
    try {
        if (type == "run") {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++runRequests_;
        } else if (type == "sweep") {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++sweepRequests_;
        } else if (type == "batch") {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++batchRequests_;
        } else if (type == "upload") {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++uploadRequests_;
        }

        if (type == "run")
            return handleRun(request, request_id, reply);
        if (type == "sweep")
            return handleSweep(request, request_id,
                               reply);
        if (type == "batch")
            return handleBatch(request, request_id,
                               reply);
        if (type == "upload")
            return handleUpload(request, request_id,
                                reply);
        if (type == "stats")
            return reply(handleStats(request_id));
        if (type == "health")
            return reply(handleHealth(request_id));
        if (type == "ping")
            return reply(handlePing(request_id));
        if (type == "shutdown")
            return reply(handleShutdown(request_id));

        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++errors_;
        }
        reply(errorResponse(
            "unknown_type",
            "unknown request type: '" + type +
                "' (use "
                "run|sweep|batch|upload|stats|health|ping|shutdown)",
            request_id));
    } catch (const sim::UnknownTraceError& e) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++errors_;
        }
        reply(errorResponse("unknown_trace", e.what(), request_id));
    } catch (const FatalError& e) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++errors_;
        }
        reply(errorResponse("bad_request", e.what(), request_id));
    } catch (const std::exception& e) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++errors_;
        }
        reply(errorResponse("internal_error", e.what(), request_id));
    }
}

void
Service::handleRun(const JsonValue& request,
                   const std::string& request_id,
                   ResponseCallback done)
{
    Clock::time_point received = Clock::now();
    sim::TraceRef ref = parseTraceRef(request, "run");
    core::CacheConfig config =
        parseCacheConfig(request.get("config"));
    config.validate();
    bool flush = request.getBool("flush", true);

    // Resolving the trace before queueing turns an unknown reference
    // into an immediate typed error rather than a queued failure.
    sim::ResolvedTrace resolved = resolveRef(ref);

    store::KeyContext ctx;
    ctx.engine = config_.engine;
    std::string digest = store::cellKey(
        ctx, resolved, canonicalConfigKey(config), flush);
    if (auto hit = cacheLookup(digest)) {
        done(okResponse("run", digest, true, *hit, request_id));
        return;
    }

    RequestDeadline deadline = parseDeadline(request, received);
    if (deadline.expired) {
        done(shedExpiredAtAdmission(request_id));
        return;
    }

    // The work lambda outlives this call (the submitter no longer
    // blocks), so every capture is owning: `resolved` shares
    // ownership of the records (or mapping) even if the repository
    // evicts the upload that satisfied the ref meanwhile.
    auto done_ptr =
        std::make_shared<ResponseCallback>(std::move(done));
    bool admitted = submitAsync(
        [this, resolved, ref, config, flush,
         at = deadline.at]() -> std::string {
            std::vector<sim::RunResult> results = executeCells(
                resolved, ref, {config}, flush, at);

            std::ostringstream oss;
            stats::JsonWriter json(oss);
            json.beginObject();
            json.field("workload", resolved.name);
            json.field("trace_digest", resolved.digest);
            json.field("flushed", flush);
            writeRunResult(json, "result", results.front());
            json.endObject();
            return oss.str();
        },
        [this, digest, request_id, done_ptr](JobOutcome&& outcome) {
            (*done_ptr)(jobResponse(true, outcome, "run", digest,
                                    request_id));
        },
        deadline.at);
    if (!admitted)
        (*done_ptr)(busyResponse(retryAfterMillis(), request_id));
}

void
Service::handleSweep(const JsonValue& request,
                     const std::string& request_id,
                     ResponseCallback done)
{
    Clock::time_point received = Clock::now();
    sim::TraceRef ref = parseTraceRef(request, "sweep");
    std::string axis = request.getString("axis");
    fatalIf(axis.empty(), "sweep request needs an 'axis'");
    core::CacheConfig base = parseCacheConfig(request.get("config"));

    sim::AxisPoints points = sim::buildAxisPoints(axis, base);
    for (const core::CacheConfig& c : points.configs)
        c.validate();

    sim::ResolvedTrace resolved = resolveRef(ref);

    // The digest covers the axis and base config, not the metric:
    // every metric is derivable from the cached raw counts.
    store::KeyContext ctx;
    ctx.engine = config_.engine;
    std::string digest = store::sweepKey(
        ctx, resolved, axis, canonicalConfigKey(base));
    if (auto hit = cacheLookup(digest)) {
        done(okResponse("sweep", digest, true, *hit, request_id));
        return;
    }

    RequestDeadline deadline = parseDeadline(request, received);
    if (deadline.expired) {
        done(shedExpiredAtAdmission(request_id));
        return;
    }

    // `points` is captured by value: the async submitter's stack
    // frame is gone before the scheduler runs the grid.
    auto done_ptr =
        std::make_shared<ResponseCallback>(std::move(done));
    bool admitted = submitAsync(
        [this, resolved, ref, points, axis,
         at = deadline.at]() -> std::string {
            std::vector<sim::RunResult> results = executeCells(
                resolved, ref, points.configs, false, at);

            std::ostringstream oss;
            stats::JsonWriter json(oss);
            json.beginObject();
            json.field("workload", resolved.name);
            json.field("trace_digest", resolved.digest);
            json.field("axis", axis);
            json.beginArray("labels");
            for (const std::string& label : points.labels)
                json.element(label);
            json.endArray();
            json.beginArray("results");
            for (std::size_t i = 0; i < results.size(); ++i) {
                json.beginObject();
                writeRunResult(json, "result", results[i]);
                json.endObject();
            }
            json.endArray();
            json.endObject();
            return oss.str();
        },
        [this, digest, request_id, done_ptr](JobOutcome&& outcome) {
            (*done_ptr)(jobResponse(true, outcome, "sweep", digest,
                                    request_id));
        },
        deadline.at);
    if (!admitted)
        (*done_ptr)(busyResponse(retryAfterMillis(), request_id));
}

namespace
{

/** Armed-only counters for the uploaded-trace import site. */
void
countImport(bool accepted, std::size_t bytes, std::size_t records)
{
    if (!telemetry::armed())
        return;
    telemetry::Registry& reg = telemetry::Registry::instance();
    reg.counter("jcache_trace_import_total",
                "Uploaded-trace import attempts, by outcome",
                {{"outcome", accepted ? "accepted" : "rejected"}})
        .inc();
    if (!accepted)
        return;
    reg.counter("jcache_trace_import_bytes_total",
                "Encoded bytes of accepted trace uploads")
        .inc(bytes);
    reg.counter("jcache_trace_import_records_total",
                "Records decoded from accepted trace uploads")
        .inc(records);
}

} // namespace

void
Service::handleUpload(const JsonValue& request,
                      const std::string& request_id,
                      ResponseCallback done)
{
    Clock::time_point received = Clock::now();
    std::string body = request.getString("trace");
    fatalIf(body.empty(), "upload request needs a 'trace' body");
    std::string encoding = request.getString("encoding");
    fatalIf(!encoding.empty() && encoding != "text",
            "unsupported upload encoding '" + encoding +
                "' (this daemon accepts: text)");
    std::string name = request.getString("name");
    if (name.empty())
        name = "uploaded";
    fatalIf(name.size() > trace::kMaxTraceNameBytes,
            "upload 'name' is unreasonably long");
    core::CacheConfig config =
        parseCacheConfig(request.get("config"));
    config.validate();
    bool flush = request.getBool("flush", true);

    // The cap guards the parse, not just the replay: an oversized
    // body is refused before any decoding work.
    if (body.size() > config_.uploadCapBytes) {
        countImport(false, body.size(), 0);
        done(errorResponse(
            "trace_too_large",
            "uploaded trace is " + std::to_string(body.size()) +
                " bytes; this daemon accepts at most " +
                std::to_string(config_.uploadCapBytes),
            request_id));
        return;
    }

    // The parsed trace must outlive this call (the submitter no
    // longer blocks until the job runs), so the work lambda owns it
    // through a shared_ptr.  Uploads run locally even on a
    // coordinator: the body exists only on this node.  Parsing and
    // registration happen *before* the result-cache lookup so a
    // repeated upload still (re-)registers the trace for later
    // by-digest runs even when its own result is already cached.
    auto trace = std::make_shared<trace::Trace>();
    try {
        telemetry::Span import_span("trace.import", "service");
        std::istringstream iss(body);
        *trace = trace::importTraceText(iss, name, "<upload>");
        import_span.arg("records", std::to_string(trace->size()));
    } catch (const trace::CorruptTraceError& e) {
        countImport(false, body.size(), 0);
        done(errorResponse("bad_trace", e.what(), request_id));
        return;
    }
    countImport(true, body.size(), trace->size());
    std::string trace_digest = repo_.addUpload(*trace);

    // Content-addressed caching: re-uploading the same bytes under
    // the same config is a cache hit, so the key hashes the body,
    // not the client-chosen name (which only rides along because it
    // appears in the rendered payload).
    store::KeyContext ctx;
    ctx.engine = config_.engine;
    std::string digest =
        store::uploadKey(ctx, util::fnv1aHex(body), name,
                         canonicalConfigKey(config), flush);
    if (auto hit = cacheLookup(digest)) {
        done(okResponse("upload", digest, true, *hit, request_id));
        return;
    }

    RequestDeadline deadline = parseDeadline(request, received);
    if (deadline.expired) {
        done(shedExpiredAtAdmission(request_id));
        return;
    }

    auto done_ptr =
        std::make_shared<ResponseCallback>(std::move(done));
    bool admitted = submitAsync(
        [this, trace, trace_digest, config, flush,
         name]() -> std::string {
            sim::BatchOptions options;
            options.engine = config_.engine;
            options.jobs = executorThreads_;
            Clock::time_point start = Clock::now();
            sim::BatchOutcome batch = sim::runBatch(
                {{trace.get(), config, flush}}, options);
            recordJobTiming(
                std::chrono::duration<double>(Clock::now() - start)
                    .count(),
                batch.report);
            fatalIf(!batch.ok(), describeFailures(batch.report));

            std::ostringstream oss;
            stats::JsonWriter json(oss);
            json.beginObject();
            json.field("workload", name);
            json.field("trace_digest", trace_digest);
            json.field("flushed", flush);
            json.field("records",
                       static_cast<double>(trace->size()));
            writeRunResult(json, "result", batch.results.front());
            json.endObject();
            return oss.str();
        },
        [this, digest, request_id, done_ptr](JobOutcome&& outcome) {
            (*done_ptr)(jobResponse(true, outcome, "upload", digest,
                                    request_id));
        },
        deadline.at);
    if (!admitted)
        (*done_ptr)(busyResponse(retryAfterMillis(), request_id));
}

void
Service::handleBatch(const JsonValue& request,
                     const std::string& request_id,
                     ResponseCallback done)
{
    Clock::time_point received = Clock::now();
    sim::TraceRef ref = parseTraceRef(request, "batch");
    const JsonValue& cells = request.get("configs");
    fatalIf(!cells.isArray() || cells.items().empty(),
            "batch request needs a non-empty 'configs' array");
    fatalIf(cells.items().size() > config_.batchCapCells,
            "batch request has " +
                std::to_string(cells.items().size()) +
                " cells; this daemon accepts at most " +
                std::to_string(config_.batchCapCells));
    // Unlike run, a batch defaults flush off: its cells are sweep
    // points, and sweeps replay without the end-of-run flush.
    bool flush = request.getBool("flush", false);

    std::vector<core::CacheConfig> configs;
    std::vector<std::string> config_keys;
    configs.reserve(cells.items().size());
    config_keys.reserve(cells.items().size());
    for (const JsonValue& cell : cells.items()) {
        core::CacheConfig config =
            parseCacheConfig(cell.get("config"));
        config.validate();
        config_keys.push_back(canonicalConfigKey(config));
        configs.push_back(config);
    }

    sim::ResolvedTrace resolved = resolveRef(ref);

    store::KeyContext ctx;
    ctx.engine = config_.engine;
    std::string digest = store::batchKey(ctx, resolved.identity,
                                         config_keys, flush);
    if (auto hit = cacheLookup(digest)) {
        done(okResponse("batch", digest, true, *hit, request_id));
        return;
    }

    RequestDeadline deadline = parseDeadline(request, received);
    if (deadline.expired) {
        done(shedExpiredAtAdmission(request_id));
        return;
    }

    auto done_ptr =
        std::make_shared<ResponseCallback>(std::move(done));
    bool admitted = submitAsync(
        [this, resolved, ref, configs = std::move(configs),
         flush, at = deadline.at]() -> std::string {
            std::vector<sim::RunResult> results = executeCells(
                resolved, ref, configs, flush, at);

            // Result elements render exactly as a sweep's: the
            // coordinator's merge reuses the same writeRunResult
            // round-trip that keeps served sweeps byte-identical to
            // the offline tools.
            std::ostringstream oss;
            stats::JsonWriter json(oss);
            json.beginObject();
            json.field("workload", resolved.name);
            json.field("trace_digest", resolved.digest);
            json.field("flushed", flush);
            json.beginArray("results");
            for (const sim::RunResult& result : results) {
                json.beginObject();
                writeRunResult(json, "result", result);
                json.endObject();
            }
            json.endArray();
            json.endObject();
            return oss.str();
        },
        [this, digest, request_id, done_ptr](JobOutcome&& outcome) {
            (*done_ptr)(jobResponse(true, outcome, "batch", digest,
                                    request_id));
        },
        deadline.at);
    if (!admitted)
        (*done_ptr)(busyResponse(retryAfterMillis(), request_id));
}

std::string
Service::handlePing(const std::string& request_id)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++pingRequests_;
    }
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("ok", true);
    json.field("type", "ping");
    json.field("version", std::string(kVersion));
    json.field("protocol", static_cast<double>(kProtocolVersion));
    json.field("api_version", std::string(kApiVersion));
    if (!request_id.empty())
        json.field("request_id", request_id);
    json.endObject();
    return oss.str();
}

std::string
Service::handleShutdown(const std::string& request_id)
{
    shutdown_.store(true);
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("ok", true);
    json.field("type", "shutdown");
    json.field("draining", true);
    if (!request_id.empty())
        json.field("request_id", request_id);
    json.endObject();
    return oss.str();
}

unsigned
Service::retryAfterMillis(double scale) const
{
    std::size_t depth = queueDepth();
    double p50_seconds = jobWall_.percentile(50.0);
    // With no completed jobs yet there is no wall-time signal; a
    // fixed middle-of-the-clamp guess beats advertising the minimum.
    double hint_millis = p50_seconds > 0.0
        ? static_cast<double>(depth == 0 ? 1 : depth) * p50_seconds *
              1000.0
        : 200.0;
    if (scale > 0.0)
        hint_millis *= scale;
    // Deterministic ±25% jitter, one draw per shed: identical hints
    // would march every shed client back in lockstep, re-colliding
    // at exactly the moment the queue was full last time.
    std::uint64_t draw = mixJitter(
        config_.retryJitterSeed +
        jitterSeq_.fetch_add(1, std::memory_order_relaxed));
    double fraction =
        0.75 + 0.5 * (static_cast<double>(draw >> 11) /
                      static_cast<double>(1ull << 53));
    hint_millis *= fraction;
    if (hint_millis < 50.0)
        hint_millis = 50.0;
    if (hint_millis > 5000.0)
        hint_millis = 5000.0;
    return static_cast<unsigned>(hint_millis);
}

std::string
Service::shedExpiredAtAdmission(const std::string& request_id)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++shedDeadline_;
    }
    countShed("deadline");
    return deadlineResponse(0.0, request_id);
}

std::string
Service::jobResponse(bool admitted, const JobOutcome& outcome,
                     const std::string& type,
                     const std::string& digest,
                     const std::string& request_id)
{
    if (!admitted)
        return busyResponse(retryAfterMillis(), request_id);
    if (outcome.shedCode == "deadline_exceeded")
        return deadlineResponse(outcome.waitedMillis, request_id);
    if (!outcome.shedCode.empty())
        return busyResponse(outcome.retryAfterMillis, request_id);
    if (outcome.errorCode == "deadline_exceeded")
        return deadlineResponse(outcome.waitedMillis, request_id);
    if (!outcome.error.empty())
        return errorResponse(outcome.errorCode.empty()
                                 ? "bad_request"
                                 : outcome.errorCode,
                             outcome.error, request_id);
    cacheInsert(digest, outcome.payload);
    return okResponse(type, digest, false, outcome.payload,
                      request_id);
}

namespace
{

/**
 * The `node` block shared by stats and health (API 1.3): role,
 * transport connection gauges, and — on a coordinator — per-worker
 * scatter health.  `degraded` is the typed signal monitoring keys
 * on: true whenever any configured worker is marked unhealthy.
 */
void
writeNodeBlock(stats::JsonWriter& json, const ServiceSnapshot& snap)
{
    bool degraded = false;
    for (const WorkerHealth& w : snap.workers)
        if (!w.healthy)
            degraded = true;
    json.beginObject("node");
    json.field("role", snap.role);
    json.field("worker_count",
               static_cast<double>(snap.workers.size()));
    json.field("degraded", degraded);
    json.beginObject("connections");
    json.field("open", static_cast<double>(snap.connectionsOpen));
    json.field("accepted",
               static_cast<double>(snap.connectionsAccepted));
    json.endObject();
    if (!snap.workers.empty()) {
        json.beginArray("workers");
        for (const WorkerHealth& w : snap.workers) {
            json.beginObject();
            json.field("address", w.address);
            json.field("healthy", w.healthy);
            json.field("consecutive_failures",
                       static_cast<double>(w.consecutiveFailures));
            json.field("chunks_completed",
                       static_cast<double>(w.chunksCompleted));
            json.field("chunks_failed",
                       static_cast<double>(w.chunksFailed));
            json.field("rescatters",
                       static_cast<double>(w.rescatters));
            json.endObject();
        }
        json.endArray();
    }
    json.endObject();
}

} // namespace

std::string
Service::healthPayload(const ServiceSnapshot& snap) const
{
    bool accepting = !shutdown_.load();

    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("accepting", accepting);
    json.field("uptime_seconds", snap.uptimeSeconds);
    json.beginObject("queue");
    json.field("depth", static_cast<double>(snap.queueDepth));
    json.field("capacity",
               static_cast<double>(snap.queueCapacity));
    json.field("shed", static_cast<double>(snap.shedTotal()));
    json.field("shed_busy",
               static_cast<double>(snap.rejectedBusy));
    json.field("shed_codel", static_cast<double>(snap.shedCodel));
    json.field("shed_deadline",
               static_cast<double>(snap.shedDeadline));
    json.endObject();
    json.beginObject("admission");
    json.field("mode", name(snap.admissionMode));
    json.field("dropping", snap.admission.dropping);
    json.endObject();
    json.beginObject("result_cache");
    json.field("entries", static_cast<double>(snap.cache.entries));
    json.field("hits", static_cast<double>(snap.cache.hits));
    json.field("misses", static_cast<double>(snap.cache.misses));
    json.field("evictions",
               static_cast<double>(snap.cache.evictions));
    json.endObject();
    json.field("jobs_executed",
               static_cast<double>(snap.jobsExecuted));
    json.field("protocol_errors",
               static_cast<double>(snap.protocolErrors));
    writeNodeBlock(json, snap);
    json.endObject();
    return oss.str();
}

std::string
Service::handleHealth(const std::string& request_id)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++healthRequests_;
    }
    return okResponse("health", "", false, healthPayload(snapshot()),
                      request_id);
}

std::string
Service::statsPayload(const ServiceSnapshot& snap) const
{
    std::ostringstream oss;
    stats::JsonWriter json(oss);
    json.beginObject();
    json.field("version", std::string(kVersion));
    json.field("protocol", static_cast<double>(kProtocolVersion));
    json.field("api_version", std::string(kApiVersion));
    json.field("uptime_seconds", snap.uptimeSeconds);
    writeNodeBlock(json, snap);
    json.beginObject("requests");
    json.field("total", static_cast<double>(snap.requests));
    json.field("run", static_cast<double>(snap.runRequests));
    json.field("sweep", static_cast<double>(snap.sweepRequests));
    json.field("batch", static_cast<double>(snap.batchRequests));
    json.field("upload", static_cast<double>(snap.uploadRequests));
    json.field("stats", static_cast<double>(snap.statsRequests));
    json.field("health", static_cast<double>(snap.healthRequests));
    json.field("ping", static_cast<double>(snap.pingRequests));
    json.field("errors", static_cast<double>(snap.errors));
    json.field("protocol_errors",
               static_cast<double>(snap.protocolErrors));
    json.endObject();
    json.beginObject("result_cache");
    json.field("entries", static_cast<double>(snap.cache.entries));
    json.field("capacity",
               static_cast<double>(snap.cache.capacity));
    json.field("hits", static_cast<double>(snap.cache.hits));
    json.field("misses", static_cast<double>(snap.cache.misses));
    json.field("evictions",
               static_cast<double>(snap.cache.evictions));
    json.field("hit_rate", snap.cache.hitRate());
    json.endObject();
    json.beginObject("store");
    json.field("enabled", snap.storeEnabled);
    if (snap.storeEnabled) {
        json.field("dir", config_.storeDir);
        json.field("entries",
                   static_cast<double>(snap.store.entries));
        json.field("occupancy_bytes",
                   static_cast<double>(snap.store.occupancyBytes));
        json.field("cap_bytes",
                   static_cast<double>(snap.store.capBytes));
        json.field("hits", static_cast<double>(snap.store.hits));
        json.field("misses",
                   static_cast<double>(snap.store.misses));
        json.field("hit_rate", snap.store.hitRate());
        json.field("evictions",
                   static_cast<double>(snap.store.evictions));
        json.field("put_bytes",
                   static_cast<double>(snap.store.putBytes));
        json.field("torn_blobs",
                   static_cast<double>(snap.store.tornBlobs));
        json.field("torn_index",
                   static_cast<double>(snap.store.tornIndex));
    }
    json.endObject();
    json.beginObject("queue");
    json.field("depth", static_cast<double>(snap.queueDepth));
    json.field("capacity",
               static_cast<double>(snap.queueCapacity));
    json.field("rejected_busy",
               static_cast<double>(snap.rejectedBusy));
    json.field("shed_codel", static_cast<double>(snap.shedCodel));
    json.field("shed_deadline",
               static_cast<double>(snap.shedDeadline));
    json.field("shed_total", static_cast<double>(snap.shedTotal()));
    json.beginObject("wait_seconds");
    json.field("p50", snap.queueWaitP50Seconds);
    json.field("p99", snap.queueWaitP99Seconds);
    json.field("max", snap.queueWaitMaxSeconds);
    json.endObject();
    json.endObject();
    json.beginObject("admission");
    json.field("mode", name(snap.admissionMode));
    json.field("target_ms", snap.admissionTargetMillis);
    json.field("interval_ms", snap.admissionIntervalMillis);
    json.field("dropping", snap.admission.dropping);
    json.field("drop_count",
               static_cast<double>(snap.admission.dropCount));
    json.field("dropped_total",
               static_cast<double>(snap.admission.totalDropped));
    json.field("window_p50_ms", snap.admission.windowP50Millis);
    json.field("window_samples",
               static_cast<double>(snap.admission.windowSamples));
    json.endObject();
    json.beginObject("jobs");
    json.field("executed", static_cast<double>(snap.jobsExecuted));
    json.field("executor_threads",
               static_cast<double>(executorThreads_));
    json.field("engine", sim::name(config_.engine));
    json.field("busy_seconds", snap.jobBusySeconds);
    json.field("grid_seconds", snap.jobGridSeconds);
    double capacity_seconds =
        snap.jobGridSeconds * executorThreads_;
    json.field("utilization",
               capacity_seconds > 0.0
                   ? std::min(1.0,
                              snap.jobBusySeconds / capacity_seconds)
                   : 0.0);
    json.beginObject("wall_seconds");
    json.field("p50", snap.jobWallP50Seconds);
    json.field("p90", snap.jobWallP90Seconds);
    json.field("p99", snap.jobWallP99Seconds);
    json.field("max", snap.jobWallMaxSeconds);
    json.endObject();
    json.endObject();
    json.endObject();
    return oss.str();
}

std::string
Service::handleStats(const std::string& request_id)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++statsRequests_;
    }
    return okResponse("stats", "", false, statsPayload(snapshot()),
                      request_id);
}

} // namespace jcache::service
