/**
 * @file
 * Text-table formatting for bench output.
 *
 * Every bench binary prints the rows/series of one paper figure or
 * table.  TextTable right-aligns numeric columns and left-aligns the
 * first (label) column, mirroring the row-per-series layout the paper
 * uses, so the shape of a figure can be read directly off the terminal.
 */

#ifndef JCACHE_STATS_TABLE_HH
#define JCACHE_STATS_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace jcache::stats
{

/**
 * A simple column-aligned text table.
 */
class TextTable
{
  public:
    /** @param title caption printed above the table. */
    explicit TextTable(std::string title);

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a fully formatted row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /**
     * Convenience: label plus numeric cells formatted with fixed
     * precision.
     */
    void addRow(const std::string& label,
                const std::vector<double>& values, int precision = 1);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render the table. */
    void print(std::ostream& os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

/** Format a double with fixed precision into a string. */
std::string formatFixed(double value, int precision);

/** Format a byte count as "1KB", "16B", "128KB" like the paper's axes. */
std::string formatSize(std::uint64_t bytes);

} // namespace jcache::stats

#endif // JCACHE_STATS_TABLE_HH
