/**
 * @file
 * Engineering microbenchmark (google-benchmark): raw simulation
 * throughput of the DataCache hot path under the policies and
 * geometries the paper sweeps, plus trace generation and replay
 * throughput.  Not a paper figure — this guards the simulator's
 * performance so the figure sweeps stay fast.
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "core/data_cache.hh"
#include "mem/main_memory.hh"
#include "mem/traffic_meter.hh"
#include "sim/engine.hh"
#include "sim/parallel.hh"
#include "sim/run.hh"
#include "sim/sweeps.hh"
#include "trace/replay_cache.hh"
#include "workloads/workload.hh"

namespace
{

using namespace jcache;

/** Deterministic address stream shared by the access benchmarks. */
struct Lcg
{
    std::uint64_t x = 88172645463325252ull;

    Addr
    next()
    {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        return (x >> 16) % (256 * 1024);
    }
};

void
cacheAccessMix(benchmark::State& state, core::WriteHitPolicy hit,
               core::WriteMissPolicy miss)
{
    core::CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.lineBytes = 16;
    config.hitPolicy = hit;
    config.missPolicy = miss;
    mem::MainMemory memory(0);
    mem::TrafficMeter meter(&memory);
    core::DataCache cache(config, meter);
    Lcg lcg;
    for (auto _ : state) {
        Addr addr = lcg.next() & ~Addr{3};
        if ((addr >> 5) & 1)
            cache.write(addr, 4);
        else
            cache.read(addr, 4);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_WriteBackFetchOnWrite(benchmark::State& state)
{
    cacheAccessMix(state, core::WriteHitPolicy::WriteBack,
                   core::WriteMissPolicy::FetchOnWrite);
}

void
BM_WriteThroughWriteValidate(benchmark::State& state)
{
    cacheAccessMix(state, core::WriteHitPolicy::WriteThrough,
                   core::WriteMissPolicy::WriteValidate);
}

void
BM_WriteThroughWriteAround(benchmark::State& state)
{
    cacheAccessMix(state, core::WriteHitPolicy::WriteThrough,
                   core::WriteMissPolicy::WriteAround);
}

void
BM_SetAssociativeLookup(benchmark::State& state)
{
    core::CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.lineBytes = 16;
    config.assoc = static_cast<unsigned>(state.range(0));
    mem::MainMemory memory(0);
    core::DataCache cache(config, memory);
    Lcg lcg;
    for (auto _ : state) {
        cache.read(lcg.next() & ~Addr{3}, 4);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_TraceReplay(benchmark::State& state)
{
    const trace::Trace& trace = sim::TraceSet::standard().get("grr");
    core::CacheConfig config;
    for (auto _ : state) {
        sim::RunResult result = sim::runTrace(trace, config, false);
        benchmark::DoNotOptimize(result.cache.linesFetched);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * trace.size()));
}

void
BM_TraceGeneration(benchmark::State& state)
{
    for (auto _ : state) {
        workloads::WorkloadConfig config;
        auto workload = workloads::makeWorkload("liver", config);
        trace::Trace t = workloads::generateTrace(*workload);
        benchmark::DoNotOptimize(t.size());
    }
}

/**
 * Serial-vs-parallel grid sweep: the full policy matrix across the
 * cache-size axis on one trace, replayed by the ParallelExecutor at
 * the thread count given by the benchmark argument.  Compare
 * /threads:1 against /threads:N for the executor speedup; the
 * "speedup vs serial" counter reports wall time relative to the
 * thread-pool-free serial loop measured once up front.
 */
void
BM_GridSweepParallel(benchmark::State& state)
{
    const trace::Trace& trace = sim::TraceSet::standard().get("grr");
    std::vector<core::CacheConfig> configs;
    for (Count size : sim::standardCacheSizes()) {
        for (auto [hit, miss] : sim::legalPolicyPairs()) {
            core::CacheConfig c;
            c.sizeBytes = size;
            c.hitPolicy = hit;
            c.missPolicy = miss;
            configs.push_back(c);
        }
    }
    std::vector<sim::SweepJob> grid;
    for (const core::CacheConfig& c : configs)
        grid.push_back({&trace, c, false});

    // Serial reference: a plain loop with no executor at all.
    static double serial_seconds = [&] {
        auto start = std::chrono::steady_clock::now();
        for (const sim::SweepJob& job : grid) {
            sim::RunResult r =
                sim::runTrace(*job.trace, job.config, job.flushAtEnd);
            benchmark::DoNotOptimize(r.instructions);
        }
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }();

    auto threads = static_cast<unsigned>(state.range(0));
    sim::ParallelExecutor executor(threads);
    Count total = 0;
    double wall = 0.0;
    for (auto _ : state) {
        sim::SweepOutcome outcome = executor.run(grid);
        total += outcome.report.totalInstructions();
        wall += outcome.report.wallSeconds;
        benchmark::DoNotOptimize(outcome.results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.counters["speedup_vs_serial"] =
        wall > 0.0 ? serial_seconds *
                         static_cast<double>(state.iterations()) / wall
                   : 0.0;
    state.counters["grid_jobs"] =
        static_cast<double>(grid.size());
}

/**
 * Acceptance benchmark for the one-pass engine: the union Figure
 * 13-16 grid (all four write-miss policies over the cache-size axis
 * at 16B lines and the line-size axis at 8KB) on one trace, single
 * worker, one-pass vs per-cell.  The "speedup_vs_percell" counter is
 * the headline number: the one-pass engine decodes the trace once per
 * chunk of lanes instead of once per cell, and must come out >= 2x.
 */
/** The union Figure 13-16 grid for one trace (52 cells). */
std::vector<sim::Request>
onePassGrid(const trace::Trace& trace)
{
    const std::vector<core::WriteMissPolicy> policies = {
        core::WriteMissPolicy::FetchOnWrite,
        core::WriteMissPolicy::WriteValidate,
        core::WriteMissPolicy::WriteAround,
        core::WriteMissPolicy::WriteInvalidate,
    };
    auto cell = [](Count size, unsigned line,
                   core::WriteMissPolicy miss) {
        core::CacheConfig c;
        c.sizeBytes = size;
        c.lineBytes = line;
        c.hitPolicy = core::WriteHitPolicy::WriteThrough;
        c.missPolicy = miss;
        return c;
    };
    std::vector<sim::Request> requests;
    for (Count size : sim::standardCacheSizes())
        for (core::WriteMissPolicy miss : policies)
            requests.push_back({&trace, cell(size, 16, miss), false});
    for (unsigned line : sim::standardLineSizes())
        for (core::WriteMissPolicy miss : policies)
            requests.push_back(
                {&trace, cell(8 * 1024, line, miss), false});
    return requests;
}

void
BM_OnePassSweep(benchmark::State& state)
{
    const trace::Trace& trace = sim::TraceSet::standard().get("grr");
    std::vector<sim::Request> requests = onePassGrid(trace);

    sim::BatchOptions jobs1;
    jobs1.jobs = 1;

    // Per-cell reference at the same worker count, measured once.
    static double percell_seconds = [&] {
        sim::BatchOptions options = jobs1;
        options.engine = sim::Engine::PerCell;
        auto start = std::chrono::steady_clock::now();
        sim::BatchOutcome outcome = sim::runBatch(requests, options);
        benchmark::DoNotOptimize(outcome.results.data());
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }();

    sim::BatchOptions options = jobs1;
    options.engine = sim::Engine::OnePass;
    Count total = 0;
    double wall = 0.0;
    for (auto _ : state) {
        auto start = std::chrono::steady_clock::now();
        sim::BatchOutcome outcome = sim::runBatch(requests, options);
        wall += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        total += outcome.report.totalInstructions();
        benchmark::DoNotOptimize(outcome.results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.counters["speedup_vs_percell"] =
        wall > 0.0 ? percell_seconds *
                         static_cast<double>(state.iterations()) / wall
                   : 0.0;
    state.counters["grid_cells"] =
        static_cast<double>(requests.size());
}

/**
 * The same grid replayed from the mmap'd JCRC cache (the
 * --trace-cache-dir trajectory): the replay cache is written once per
 * process, then every pass decodes blocks straight off the mapping
 * instead of the in-memory record array.  speedup_vs_percell is
 * comparable with BM_OnePassSweep's counter — the gap between the two
 * is the cost (or win) of the mapped decode path.
 */
void
BM_OnePassSweepMapped(benchmark::State& state)
{
    const trace::Trace& trace = sim::TraceSet::standard().get("grr");
    static const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("jcache_bench_replay_" + std::to_string(::getpid())))
            .string();
    static const trace::MappedReplayCache mapped(
        trace::ensureReplayCache(trace, dir));
    std::vector<sim::Request> requests = onePassGrid(trace);
    for (sim::Request& r : requests)
        r.source = &mapped;

    sim::BatchOptions jobs1;
    jobs1.jobs = 1;

    static double percell_seconds = [&] {
        sim::BatchOptions options = jobs1;
        options.engine = sim::Engine::PerCell;
        auto start = std::chrono::steady_clock::now();
        sim::BatchOutcome outcome = sim::runBatch(requests, options);
        benchmark::DoNotOptimize(outcome.results.data());
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }();

    sim::BatchOptions options = jobs1;
    options.engine = sim::Engine::OnePass;
    Count total = 0;
    double wall = 0.0;
    for (auto _ : state) {
        auto start = std::chrono::steady_clock::now();
        sim::BatchOutcome outcome = sim::runBatch(requests, options);
        wall += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        total += outcome.report.totalInstructions();
        benchmark::DoNotOptimize(outcome.results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.counters["speedup_vs_percell"] =
        wall > 0.0 ? percell_seconds *
                         static_cast<double>(state.iterations()) / wall
                   : 0.0;
    state.counters["grid_cells"] =
        static_cast<double>(requests.size());
}

BENCHMARK(BM_WriteBackFetchOnWrite);
BENCHMARK(BM_WriteThroughWriteValidate);
BENCHMARK(BM_WriteThroughWriteAround);
BENCHMARK(BM_SetAssociativeLookup)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GridSweepParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnePassSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnePassSweepMapped)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
