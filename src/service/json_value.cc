/**
 * @file
 * Implementation of the JSON parser.
 */

#include "service/json_value.hh"

#include <cctype>
#include <cstdlib>

namespace jcache::service
{

namespace
{

const JsonValue kNullValue;

/** Depth cap: hostile nesting must not overflow the C++ stack. */
constexpr unsigned kMaxDepth = 64;

} // namespace

/** Recursive-descent parser over a complete document. */
class JsonParser
{
  public:
    JsonParser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {
    }

    JsonValue run()
    {
        JsonValue value;
        if (!parseValue(value, 0))
            return {};
        skipWhitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return {};
        }
        return value;
    }

  private:
    bool fail(const std::string& message)
    {
        if (error_ && error_->empty()) {
            *error_ =
                message + " at byte offset " + std::to_string(pos_);
        }
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return fail(std::string("expected '") + expected + "'");
    }

    bool parseLiteral(const char* word, JsonValue& out,
                      JsonValue::Type type, bool boolean)
    {
        for (const char* p = word; *p; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return fail("invalid literal");
        }
        out.type_ = type;
        out.bool_ = boolean;
        return true;
    }

    bool parseString(std::string& out)
    {
        if (!consume('"'))
            return false;
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            unsigned char ch =
                static_cast<unsigned char>(text_[pos_++]);
            if (ch == '"')
                return true;
            if (ch < 0x20)
                return fail("raw control character in string");
            if (ch != '\\') {
                out += static_cast<char>(ch);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(code))
                    return false;
                // Combine a high surrogate with the following \u
                // escape; unpaired surrogates are an error.
                if (code >= 0xd800 && code <= 0xdbff) {
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail("unpaired high surrogate");
                    pos_ += 2;
                    unsigned low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff)
                        return fail("invalid low surrogate");
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                } else if (code >= 0xdc00 && code <= 0xdfff) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(out, code);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool parseHex4(unsigned& out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return fail("truncated \\u escape");
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    static void appendUtf8(std::string& out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    bool parseNumber(JsonValue& out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a number");
        std::string token = text_.substr(start, pos_ - start);
        // RFC 8259: no leading zeros ("01") and no bare signs; strtod
        // is laxer than the JSON grammar, so pre-check the prefix.
        std::size_t digits = token[0] == '-' ? 1 : 0;
        if (digits >= token.size() ||
            !std::isdigit(static_cast<unsigned char>(token[digits])))
            return fail("malformed number");
        if (token[digits] == '0' && digits + 1 < token.size() &&
            std::isdigit(
                static_cast<unsigned char>(token[digits + 1])))
            return fail("leading zero in number");
        char* end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        out.type_ = JsonValue::Type::Number;
        out.number_ = value;
        return true;
    }

    bool parseValue(JsonValue& out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.type_ = JsonValue::Type::String;
            return parseString(out.string_);
          case 't':
            return parseLiteral("true", out, JsonValue::Type::Bool,
                                true);
          case 'f':
            return parseLiteral("false", out, JsonValue::Type::Bool,
                                false);
          case 'n':
            return parseLiteral("null", out, JsonValue::Type::Null,
                                false);
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue& out, unsigned depth)
    {
        ++pos_; // '{'
        out.type_ = JsonValue::Type::Object;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.members_[key] = std::move(value);
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool parseArray(JsonValue& out, unsigned depth)
    {
        ++pos_; // '['
        out.type_ = JsonValue::Type::Array;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.items_.push_back(std::move(value));
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

const JsonValue&
JsonValue::get(const std::string& key) const
{
    auto it = members_.find(key);
    return it == members_.end() ? kNullValue : it->second;
}

bool
JsonValue::has(const std::string& key) const
{
    return members_.find(key) != members_.end();
}

std::string
JsonValue::getString(const std::string& key,
                     const std::string& fallback) const
{
    const JsonValue& v = get(key);
    return v.isString() ? v.string() : fallback;
}

double
JsonValue::getNumber(const std::string& key, double fallback) const
{
    const JsonValue& v = get(key);
    return v.isNumber() ? v.number() : fallback;
}

bool
JsonValue::getBool(const std::string& key, bool fallback) const
{
    const JsonValue& v = get(key);
    return v.isBool() ? v.boolean() : fallback;
}

JsonValue
JsonValue::parse(const std::string& text, std::string* error)
{
    if (error)
        error->clear();
    return JsonParser(text, error).run();
}

} // namespace jcache::service
