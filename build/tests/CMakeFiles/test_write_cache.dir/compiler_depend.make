# Empty compiler generated dependencies file for test_write_cache.
# This may be replaced when dependencies are built.
