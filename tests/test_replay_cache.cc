/**
 * @file
 * Tests for the JCRC on-disk replay cache (trace/replay_cache.hh):
 * write/mmap round trips, header metadata, digest-addressed naming,
 * and rejection of corrupt or truncated files.
 */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/replay_cache.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace jcache::trace
{
namespace
{

namespace fs = std::filesystem;

/** A per-test scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    explicit TempDir(const std::string& tag)
        : path((fs::temp_directory_path() /
                (tag + "_" + std::to_string(::getpid())))
                   .string())
    {
        fs::remove_all(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

Trace
sampleTrace()
{
    workloads::WorkloadConfig config;
    config.scale = 1;
    return workloads::generateTrace(
        *workloads::makeWorkload("ccom", config));
}

/** Drain every record out of a replay source through its cursor. */
std::vector<TraceRecord>
drain(const ReplaySource& source)
{
    std::vector<TraceRecord> records;
    auto cursor = source.blocks(kDefaultBlockRecords);
    TraceBlock block;
    while (cursor->next(block))
        records.insert(records.end(), block.records,
                       block.records + block.count);
    return records;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(ReplayCache, RoundTripsEveryRecord)
{
    TempDir dir("jcache_replay_roundtrip");
    Trace trace = sampleTrace();
    std::string path = ensureReplayCache(trace, dir.path);
    EXPECT_EQ(path, replayCachePath(dir.path, contentDigest(trace)));

    MappedReplayCache cache(path);
    EXPECT_EQ(cache.name(), trace.name());
    EXPECT_EQ(cache.records(), trace.records().size());
    EXPECT_EQ(cache.digest(), contentDigest(trace));
    EXPECT_EQ(cache.identity(), traceIdentity(trace));
    EXPECT_EQ(drain(cache), trace.records());
}

TEST(ReplayCache, ShortBlocksDecodeIndependently)
{
    // A tiny block size forces many blocks plus a short tail block;
    // every boundary must still reproduce the exact record stream.
    TempDir dir("jcache_replay_blocks");
    Trace trace = sampleTrace();
    std::string path = replayCachePath(dir.path, contentDigest(trace));
    fs::create_directories(dir.path);
    writeReplayCache(trace, path, 7);

    MappedReplayCache cache(path);
    EXPECT_EQ(cache.blockRecords(), 7u);
    EXPECT_EQ(cache.blockCount(),
              (trace.records().size() + 6) / 7);
    EXPECT_EQ(drain(cache), trace.records());

    // Two concurrent cursors do not disturb each other.
    auto a = cache.blocks(0);
    auto b = cache.blocks(0);
    TraceBlock first_a;
    TraceBlock first_b;
    ASSERT_TRUE(a->next(first_a));
    ASSERT_TRUE(b->next(first_b));
    ASSERT_GT(first_a.count, 0u);
    EXPECT_EQ(first_a.records[0], first_b.records[0]);
}

TEST(ReplayCache, EnsureIsIdempotent)
{
    TempDir dir("jcache_replay_idem");
    Trace trace = sampleTrace();
    std::string first = ensureReplayCache(trace, dir.path);
    std::string bytes = readFile(first);
    std::string second = ensureReplayCache(trace, dir.path);
    EXPECT_EQ(first, second);
    EXPECT_EQ(readFile(second), bytes);
}

TEST(ReplayCache, RejectsBadMagicAndVersion)
{
    TempDir dir("jcache_replay_magic");
    Trace trace = sampleTrace();
    std::string path = ensureReplayCache(trace, dir.path);
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 8u);

    std::string bad_magic = bytes;
    bad_magic[0] = 'X';
    writeFile(path, bad_magic);
    EXPECT_THROW(MappedReplayCache{path}, ReplayCacheError);

    std::string bad_version = bytes;
    bad_version[4] = static_cast<char>(kReplayCacheVersion + 1);
    writeFile(path, bad_version);
    EXPECT_THROW(MappedReplayCache{path}, ReplayCacheError);
}

TEST(ReplayCache, RejectsTruncation)
{
    TempDir dir("jcache_replay_trunc");
    Trace trace = sampleTrace();
    std::string path = ensureReplayCache(trace, dir.path);
    std::string bytes = readFile(path);

    // Headerless stub: fails structural validation on open.
    writeFile(path, bytes.substr(0, 10));
    EXPECT_THROW(MappedReplayCache{path}, ReplayCacheError);

    // Payload cut short: opens (the header is intact) but the cursor
    // must hit the damage rather than fabricate records.
    writeFile(path, bytes.substr(0, bytes.size() - 8));
    EXPECT_THROW(
        {
            MappedReplayCache cache(path);
            drain(cache);
        },
        ReplayCacheError);
}

TEST(ReplayCache, EmptyTraceRoundTrips)
{
    TempDir dir("jcache_replay_empty");
    Trace empty("empty");
    std::string path = ensureReplayCache(empty, dir.path);
    MappedReplayCache cache(path);
    EXPECT_EQ(cache.records(), 0u);
    EXPECT_TRUE(drain(cache).empty());
}

} // namespace
} // namespace jcache::trace
