/**
 * @file
 * Fundamental type aliases shared by every jcache module.
 *
 * The simulator models a 64-bit byte-addressed memory; Addr is always a
 * byte address.  Counts of events (references, cycles, transactions)
 * use Count so that overflow is impossible for any realistic run.
 */

#ifndef JCACHE_UTIL_TYPES_HH
#define JCACHE_UTIL_TYPES_HH

#include <cstdint>

namespace jcache
{

/** A byte address in the simulated virtual address space. */
using Addr = std::uint64_t;

/** An event count (references, cycles, bytes, transactions). */
using Count = std::uint64_t;

/** A simulated-time value in CPU cycles. */
using Cycles = std::uint64_t;

/** A per-byte mask covering one cache line (lines are at most 64B). */
using ByteMask = std::uint64_t;

} // namespace jcache

#endif // JCACHE_UTIL_TYPES_HH
