file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_l2_traffic.dir/bench_ext_l2_traffic.cc.o"
  "CMakeFiles/bench_ext_l2_traffic.dir/bench_ext_l2_traffic.cc.o.d"
  "bench_ext_l2_traffic"
  "bench_ext_l2_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_l2_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
