/**
 * @file
 * Ablations of cache geometry choices the paper holds fixed:
 *
 *  1. associativity: how the write-miss-policy gains (Figure 14's
 *     total-miss reduction) shift from direct-mapped to 2/4-way —
 *     note that write-invalidate degenerates to write-around once
 *     the probe precedes the write;
 *  2. replacement policy: LRU vs FIFO vs random at 4-way, verifying
 *     the paper's implicit LRU assumption is not load-bearing.
 */

#include <iostream>

#include "sim/run.hh"
#include "stats/counter.hh"
#include "stats/table.hh"
#include "sim/sweeps.hh"

namespace
{

using namespace jcache;

core::CacheConfig
makeConfig(unsigned assoc, core::WriteMissPolicy miss,
           core::ReplacementPolicy replacement =
               core::ReplacementPolicy::Lru)
{
    core::CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.lineBytes = 16;
    config.assoc = assoc;
    config.hitPolicy = core::WriteHitPolicy::WriteThrough;
    config.missPolicy = miss;
    config.replacement = replacement;
    return config;
}

void
associativityAblation(const sim::TraceSet& traces)
{
    stats::TextTable table(
        "Ablation: total-miss reduction vs fetch-on-write at 8KB/16B "
        "across associativities (six-benchmark average)");
    table.setHeader({"policy", "direct-mapped", "2-way", "4-way"});

    for (core::WriteMissPolicy miss :
         {core::WriteMissPolicy::WriteValidate,
          core::WriteMissPolicy::WriteAround,
          core::WriteMissPolicy::WriteInvalidate}) {
        std::vector<double> row;
        for (unsigned assoc : {1u, 2u, 4u}) {
            double sum = 0;
            for (const trace::Trace& t : traces.traces()) {
                sim::RunResult base = sim::runTrace(
                    t, makeConfig(assoc,
                                  core::WriteMissPolicy::FetchOnWrite),
                    false);
                sim::RunResult alt =
                    sim::runTrace(t, makeConfig(assoc, miss), false);
                sum += stats::percentReduction(
                    base.cache.countedMisses(),
                    alt.cache.countedMisses());
            }
            row.push_back(sum / static_cast<double>(traces.size()));
        }
        table.addRow(core::name(miss), row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
replacementAblation(const sim::TraceSet& traces)
{
    stats::TextTable table(
        "Ablation: miss ratio (%) of an 8KB/16B 4-way fetch-on-write "
        "cache under LRU / FIFO / random replacement");
    table.setHeader({"program", "LRU", "FIFO", "random"});

    for (const trace::Trace& t : traces.traces()) {
        std::vector<double> row;
        for (core::ReplacementPolicy replacement :
             {core::ReplacementPolicy::Lru,
              core::ReplacementPolicy::Fifo,
              core::ReplacementPolicy::Random}) {
            sim::RunResult r = sim::runTrace(
                t, makeConfig(4, core::WriteMissPolicy::FetchOnWrite,
                              replacement),
                false);
            row.push_back(100.0 *
                          stats::ratio(r.cache.countedMisses(),
                                       r.cache.accesses()));
        }
        table.addRow(t.name(), row, 2);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    const auto& traces = jcache::sim::TraceSet::standard();
    associativityAblation(traces);
    replacementAblation(traces);
    std::cout <<
        "\nAssociativity shrinks conflict misses for every policy "
        "but preserves the\npolicy ordering; replacement choice "
        "moves miss ratios only slightly, so the\npaper's LRU "
        "assumption is benign.\n";
    return 0;
}
