/**
 * @file
 * Implementation of the persistent result store.
 */

#include "store/store.hh"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/trace_writer.hh"
#include "util/digest.hh"
#include "util/fault.hh"
#include "util/fs.hh"

namespace jcache::store
{

namespace
{

namespace fs = std::filesystem;

/** Blob framing: magic | u32 version | u64 payload bytes | digest. */
constexpr char kBlobMagic[4] = {'J', 'C', 'R', 'O'};
constexpr std::uint32_t kBlobVersion = 1;
constexpr std::size_t kDigestChars = 16;
constexpr std::size_t kBlobHeaderBytes =
    sizeof(kBlobMagic) + sizeof(std::uint32_t) +
    sizeof(std::uint64_t) + kDigestChars;

constexpr const char* kIndexFormat = "jcache-store-index";
constexpr unsigned kIndexVersion = 1;

/**
 * Weighted-eviction tuning: each access (capped) is worth this many
 * recency ticks, so a repeatedly hit entry outranks up to
 * kAccessBoost * kAccessCap more recent one-shot writes.
 */
constexpr std::uint64_t kAccessBoost = 8;
constexpr std::uint64_t kAccessCap = 16;

template <typename T>
void
appendLe(std::string& out, T value)
{
    auto bits = static_cast<std::uint64_t>(value);
    for (unsigned i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

template <typename T>
T
readLe(const std::string& in, std::size_t offset)
{
    T value = 0;
    for (unsigned i = 0; i < sizeof(T); ++i) {
        value |= static_cast<T>(
                     static_cast<std::uint8_t>(in[offset + i]))
                 << (8 * i);
    }
    return value;
}

/** Frame a payload as one blob document. */
std::string
encodeBlob(const std::string& payload)
{
    std::string blob;
    blob.reserve(kBlobHeaderBytes + payload.size());
    blob.append(kBlobMagic, sizeof(kBlobMagic));
    appendLe<std::uint32_t>(blob, kBlobVersion);
    appendLe<std::uint64_t>(blob, payload.size());
    blob += util::fnv1aHex(payload);
    blob += payload;
    return blob;
}

/**
 * Validate framing shared by the cheap open-time check and the full
 * lookup-time check: magic, version, and the claimed payload size
 * against the actual byte count.
 */
void
checkHeader(const std::string& head, std::uint64_t actual_bytes,
            const std::string& path)
{
    if (head.size() < kBlobHeaderBytes ||
        head.compare(0, sizeof(kBlobMagic), kBlobMagic,
                     sizeof(kBlobMagic)) != 0)
        throw CorruptStoreError("not a store blob: " + path);
    auto version =
        readLe<std::uint32_t>(head, sizeof(kBlobMagic));
    if (version != kBlobVersion)
        throw CorruptStoreError(
            "unsupported blob version " + std::to_string(version) +
            ": " + path);
    auto claimed = readLe<std::uint64_t>(
        head, sizeof(kBlobMagic) + sizeof(std::uint32_t));
    if (claimed != actual_bytes)
        throw CorruptStoreError(
            "torn blob (header claims " + std::to_string(claimed) +
            " payload bytes, " + std::to_string(actual_bytes) +
            " present): " + path);
}

/**
 * Decode one blob document, verifying the payload digest.  Throws
 * CorruptStoreError for any tear or mismatch.
 */
std::string
decodeBlob(const std::string& blob, const std::string& path)
{
    if (blob.size() < kBlobHeaderBytes)
        throw CorruptStoreError("torn blob (short header): " + path);
    checkHeader(blob, blob.size() - kBlobHeaderBytes, path);
    std::string stored_digest = blob.substr(
        sizeof(kBlobMagic) + sizeof(std::uint32_t) +
            sizeof(std::uint64_t),
        kDigestChars);
    std::string payload = blob.substr(kBlobHeaderBytes);
    if (util::fnv1aHex(payload) != stored_digest)
        throw CorruptStoreError(
            "torn blob (payload digest mismatch): " + path);
    return payload;
}

/** Armed-only mirror of a lookup outcome into the registry. */
void
countLookup(bool hit)
{
    if (!telemetry::armed())
        return;
    auto& reg = telemetry::Registry::instance();
    static telemetry::Counter& hits =
        reg.counter("jcache_store_hits_total",
                    "Persistent result-store lookups that hit");
    static telemetry::Counter& misses =
        reg.counter("jcache_store_misses_total",
                    "Persistent result-store lookups that missed");
    (hit ? hits : misses).inc();
}

void
countEviction()
{
    if (!telemetry::armed())
        return;
    static telemetry::Counter& evictions =
        telemetry::Registry::instance().counter(
            "jcache_store_evictions_total",
            "Result-store blobs evicted by byte-cap pressure");
    evictions.inc();
}

void
countPutBytes(std::uint64_t bytes)
{
    if (!telemetry::armed())
        return;
    static telemetry::Counter& put_bytes =
        telemetry::Registry::instance().counter(
            "jcache_store_bytes_total",
            "Blob bytes written to the persistent result store");
    put_bytes.inc(bytes);
}

} // namespace

ResultStore::ResultStore(const StoreConfig& config) : config_(config)
{
    if (config_.indexEvery == 0)
        config_.indexEvery = 1;
    util::ensureDirectory(config_.dir);
    util::ensureDirectory(
        (fs::path(config_.dir) / "objects").string());
    openScan();
    loadIndex();
}

ResultStore::~ResultStore()
{
    try {
        std::lock_guard<std::mutex> lock(mutex_);
        util::FileLock file_lock(lockPath());
        persistIndex();
    } catch (...) {
        // The index is an accelerator; a failed persist at shutdown
        // only costs the next open a scan.
    }
}

std::string
ResultStore::blobPath(const std::string& digest) const
{
    return (fs::path(config_.dir) / "objects" / (digest + ".jcr"))
        .string();
}

std::string
ResultStore::indexPath() const
{
    return (fs::path(config_.dir) / "index.jci").string();
}

std::string
ResultStore::lockPath() const
{
    return (fs::path(config_.dir) / "lock").string();
}

void
ResultStore::openScan()
{
    // Scan order must be deterministic (ticks seed the LRU rank), so
    // collect first, then sort by (mtime, digest).
    std::vector<std::tuple<fs::file_time_type, std::string,
                           std::uint64_t>>
        found;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(fs::path(config_.dir) / "objects")) {
        const fs::path& path = entry.path();
        if (path.extension() == ".tmp") {
            // A put died before its rename; the tmp file was never
            // part of the store.
            std::error_code ec;
            fs::remove(path, ec);
            continue;
        }
        if (path.extension() != ".jcr" || !entry.is_regular_file())
            continue;
        std::uint64_t size = entry.file_size();
        try {
            std::ifstream ifs(path, std::ios::binary);
            if (!ifs)
                throw CorruptStoreError("unreadable blob: " +
                                        path.string());
            std::string head(kBlobHeaderBytes, '\0');
            ifs.read(head.data(),
                     static_cast<std::streamsize>(head.size()));
            if (static_cast<std::size_t>(ifs.gcount()) !=
                kBlobHeaderBytes)
                throw CorruptStoreError("torn blob (short header): " +
                                        path.string());
            checkHeader(head, size - kBlobHeaderBytes,
                        path.string());
        } catch (const CorruptStoreError&) {
            ++tornBlobs_;
            std::error_code ec;
            fs::remove(path, ec);
            continue;
        }
        found.emplace_back(entry.last_write_time(),
                           path.stem().string(), size);
    }
    std::sort(found.begin(), found.end());
    for (const auto& [mtime, digest, size] : found) {
        (void)mtime;
        Entry entry;
        entry.bytes = size;
        entry.lastUse = ++tick_;
        occupancy_ += size;
        entries_.emplace(digest, entry);
    }
}

void
ResultStore::loadIndex()
{
    std::optional<std::string> text;
    try {
        text = util::readFileIfExists(indexPath());
    } catch (const util::FsError&) {
        ++tornIndex_;
        return;
    }
    if (!text)
        return;
    try {
        std::istringstream iss(*text);
        std::string format;
        unsigned version = 0;
        if (!(iss >> format >> version) || format != kIndexFormat ||
            version != kIndexVersion)
            throw CorruptStoreError("not a store index");
        std::size_t lines = 0;
        std::map<std::string, std::uint64_t> accesses;
        for (;;) {
            std::string token;
            if (!(iss >> token))
                throw CorruptStoreError("truncated index");
            if (token == "end")
                break;
            std::uint64_t bytes = 0, count = 0, last_use = 0;
            if (!(iss >> bytes >> count >> last_use))
                throw CorruptStoreError("torn index entry");
            accesses[token] = count;
            ++lines;
        }
        std::size_t claimed = 0;
        if (!(iss >> claimed) || claimed != lines)
            throw CorruptStoreError("index entry count mismatch");
        // Only access counts carry over: recency was already seeded
        // from mtimes, and bytes from the scan — the files are the
        // truth, the index only remembers popularity.
        for (auto& [digest, entry] : entries_) {
            auto it = accesses.find(digest);
            if (it != accesses.end())
                entry.accesses = it->second;
        }
    } catch (const CorruptStoreError&) {
        ++tornIndex_;
    }
}

void
ResultStore::persistIndex()
{
    std::ostringstream oss;
    oss << kIndexFormat << ' ' << kIndexVersion << '\n';
    for (const auto& [digest, entry] : entries_) {
        oss << digest << ' ' << entry.bytes << ' ' << entry.accesses
            << ' ' << entry.lastUse << '\n';
    }
    oss << "end " << entries_.size() << '\n';
    try {
        util::atomicWriteFile(indexPath(), oss.str(),
                              "store.index.torn");
    } catch (const util::FsError&) {
        // Best effort: the next open rebuilds by scanning.
    }
}

std::uint64_t
ResultStore::rank(const Entry& entry) const
{
    if (config_.eviction == EvictionPolicy::Lru)
        return entry.lastUse;
    return entry.lastUse +
           kAccessBoost * std::min(entry.accesses, kAccessCap);
}

void
ResultStore::evictToFit()
{
    if (config_.capBytes == 0)
        return;
    while (occupancy_ > config_.capBytes && !entries_.empty()) {
        auto victim = entries_.begin();
        std::uint64_t victim_rank = rank(victim->second);
        for (auto it = std::next(entries_.begin());
             it != entries_.end(); ++it) {
            std::uint64_t r = rank(it->second);
            if (r < victim_rank) {
                victim = it;
                victim_rank = r;
            }
        }
        std::error_code ec;
        fs::remove(blobPath(victim->first), ec);
        occupancy_ -= victim->second.bytes;
        entries_.erase(victim);
        ++evictions_;
        countEviction();
    }
}

std::optional<std::string>
ResultStore::get(const std::string& digest)
{
    telemetry::Span span("store.lookup", "store");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(digest);
    if (it == entries_.end()) {
        ++misses_;
        countLookup(false);
        span.arg("hit", "false");
        return std::nullopt;
    }
    std::optional<std::string> blob;
    try {
        blob = util::readFileIfExists(blobPath(digest));
    } catch (const util::FsError&) {
        blob = std::nullopt;
    }
    if (!blob) {
        // A worker sharing this store directory evicted the blob
        // under its byte cap: an ordinary miss for this process, not
        // corruption — the entry just moved out from under us.
        occupancy_ -= it->second.bytes;
        entries_.erase(it);
        ++misses_;
        countLookup(false);
        span.arg("hit", "evicted");
        return std::nullopt;
    }
    try {
        std::string payload = decodeBlob(*blob, blobPath(digest));
        it->second.accesses += 1;
        it->second.lastUse = ++tick_;
        ++hits_;
        countLookup(true);
        span.arg("hit", "true");
        return payload;
    } catch (const FatalError&) {
        // Torn or vanished underneath us: drop the entry and miss.
        // CorruptStoreError and FsError both land here.
        ++tornBlobs_;
        std::error_code ec;
        fs::remove(blobPath(digest), ec);
        occupancy_ -= it->second.bytes;
        entries_.erase(it);
        ++misses_;
        countLookup(false);
        span.arg("hit", "torn");
        return std::nullopt;
    }
}

void
ResultStore::put(const std::string& digest,
                 const std::string& payload)
{
    telemetry::Span span("store.put", "store");
    std::lock_guard<std::mutex> lock(mutex_);
    std::string blob = encodeBlob(payload);
    if (config_.capBytes != 0 && blob.size() > config_.capBytes) {
        // Larger than the whole store: not cacheable at this cap.
        return;
    }
    std::string path = blobPath(digest);
    // Workers sharing one store directory serialize their mutations
    // (blob write, cap eviction, index persist) on the store's lock
    // file, so two evictors never double-delete or double-count.
    util::FileLock file_lock(lockPath());
    if (JCACHE_FAULT("store.put.crash")) {
        // The deterministic mid-put death for recovery tests: leave
        // a half-written temporary behind and vanish without stack
        // unwinding, exactly like a kill -9 between the write and
        // the rename.  The next open sweeps the temporary; every
        // previously renamed blob is untouched.
        std::ofstream ofs(path + ".tmp",
                          std::ios::binary | std::ios::trunc);
        ofs.write(blob.data(),
                  static_cast<std::streamsize>(blob.size() / 2));
        ofs.flush();
        std::raise(SIGKILL);
    }
    util::atomicWriteFile(path, blob, "store.blob.torn");
    putBytes_ += blob.size();
    countPutBytes(blob.size());

    Entry& entry = entries_[digest];
    occupancy_ = occupancy_ - entry.bytes + blob.size();
    entry.bytes = blob.size();
    entry.accesses += 1;
    entry.lastUse = ++tick_;
    evictToFit();

    if (++putsSinceIndex_ >= config_.indexEvery) {
        persistIndex();
        putsSinceIndex_ = 0;
    }
}

bool
ResultStore::contains(const std::string& digest) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(digest) != entries_.end();
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StoreStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.putBytes = putBytes_;
    s.tornBlobs = tornBlobs_;
    s.tornIndex = tornIndex_;
    s.entries = entries_.size();
    s.occupancyBytes = occupancy_;
    s.capBytes = config_.capBytes;
    return s;
}

} // namespace jcache::store
