file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_alloc_instructions.dir/bench_ext_alloc_instructions.cc.o"
  "CMakeFiles/bench_ext_alloc_instructions.dir/bench_ext_alloc_instructions.cc.o.d"
  "bench_ext_alloc_instructions"
  "bench_ext_alloc_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_alloc_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
