/**
 * @file
 * Tests for the unified trace-addressing API (sim/trace_ref.hh):
 * TraceRef parsing and canonical specs, and TraceRepository
 * resolution across the registry, uploaded traces, replay-cache
 * directories, and the workload generator.
 */

#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "sim/sweeps.hh"
#include "sim/trace_ref.hh"
#include "trace/file_io.hh"
#include "trace/replay_cache.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace jcache::sim
{
namespace
{

namespace fs = std::filesystem;

/** A per-test scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    explicit TempDir(const std::string& tag)
        : path((fs::temp_directory_path() /
                (tag + "_" + std::to_string(::getpid())))
                   .string())
    {
        fs::remove_all(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

trace::Trace
miniTrace(const std::string& name, unsigned records)
{
    trace::Trace t(name);
    for (unsigned i = 0; i < records; ++i) {
        trace::TraceRecord r;
        r.addr = 0x1000 + i * 64;
        r.type = i % 2 == 0 ? trace::RefType::Read
                            : trace::RefType::Write;
        t.append(r);
    }
    return t;
}

TEST(TraceRef, ParsesEverySpelling)
{
    auto bare = TraceRef::parse("ccom");
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->kind(), TraceRef::Kind::Name);
    EXPECT_EQ(bare->value(), "ccom");
    EXPECT_EQ(bare->spec(), "name:ccom");
    EXPECT_EQ(*bare, TraceRef::byName("ccom"));

    auto path = TraceRef::parse("path:/tmp/trace.jct");
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->kind(), TraceRef::Kind::Path);
    EXPECT_EQ(path->value(), "/tmp/trace.jct");

    auto digest = TraceRef::parse("digest:0123456789abcdef");
    ASSERT_TRUE(digest.has_value());
    EXPECT_EQ(digest->kind(), TraceRef::Kind::Digest);
    EXPECT_EQ(digest->value(), "0123456789abcdef");

    // The canonical spec round-trips through parse() for all kinds.
    for (const TraceRef& ref : {*bare, *path, *digest}) {
        auto again = TraceRef::parse(ref.spec());
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(*again, ref);
    }
}

TEST(TraceRef, RejectsMalformedSpecs)
{
    EXPECT_FALSE(TraceRef::parse("").has_value());
    EXPECT_FALSE(TraceRef::parse("name:").has_value());
    EXPECT_FALSE(TraceRef::parse("digest:").has_value());
    EXPECT_FALSE(TraceRef::parse("digest:short").has_value());
    EXPECT_FALSE(
        TraceRef::parse("digest:0123456789ABCDEF").has_value());
    EXPECT_FALSE(
        TraceRef::parse("digest:0123456789abcdefff").has_value());
    EXPECT_THROW(TraceRef::byDigest("nope"), FatalError);
    EXPECT_TRUE(TraceRef().empty());
}

TEST(TraceRepository, ResolvesRegistryNamesAndDigests)
{
    TraceRepository::Config config;
    config.registry = &TraceSet::standard();
    TraceRepository repo(config);

    ResolvedTrace by_name = repo.resolve(TraceRef::byName("ccom"));
    ASSERT_NE(by_name.trace, nullptr);
    ASSERT_NE(by_name.source, nullptr);
    EXPECT_EQ(by_name.name, "ccom");
    EXPECT_EQ(by_name.digest,
              trace::contentDigest(*by_name.trace));
    EXPECT_EQ(by_name.identity,
              trace::traceIdentity(*by_name.trace));

    // The registry trace is reachable by its digest too.
    EXPECT_TRUE(repo.knowsDigest(by_name.digest));
    ResolvedTrace by_digest =
        repo.resolve(TraceRef::byDigest(by_name.digest));
    EXPECT_EQ(by_digest.identity, by_name.identity);

    EXPECT_THROW(repo.resolve(TraceRef::byName("nonesuch")),
                 UnknownTraceError);
    EXPECT_THROW(
        repo.resolve(TraceRef::byDigest("ffffffffffffffff")),
        UnknownTraceError);
    EXPECT_FALSE(repo.knowsDigest("ffffffffffffffff"));
}

TEST(TraceRepository, GeneratesUnknownNamesWhenAllowed)
{
    TraceRepository strict;
    EXPECT_THROW(strict.resolve(TraceRef::byName("ccom")),
                 UnknownTraceError);

    TraceRepository::Config config;
    config.generateUnknownNames = true;
    TraceRepository repo(config);
    ResolvedTrace generated = repo.resolve(TraceRef::byName("ccom"));
    ASSERT_NE(generated.trace, nullptr);
    EXPECT_EQ(generated.name, "ccom");
    EXPECT_THROW(repo.resolve(TraceRef::byName("nonesuch")),
                 UnknownTraceError);
}

TEST(TraceRepository, PathRefsHonorAllowPaths)
{
    TempDir dir("jcache_ref_path");
    fs::create_directories(dir.path);
    trace::Trace t = miniTrace("filed", 16);
    std::string file = dir.path + "/filed.jct";
    trace::saveTrace(t, file);

    TraceRepository open;
    ResolvedTrace resolved = open.resolve(TraceRef::byPath(file));
    ASSERT_NE(resolved.trace, nullptr);
    EXPECT_EQ(resolved.digest, trace::contentDigest(t));

    TraceRepository::Config closed_config;
    closed_config.allowPaths = false;
    TraceRepository closed(closed_config);
    EXPECT_THROW(closed.resolve(TraceRef::byPath(file)), FatalError);
}

TEST(TraceRepository, UploadsResolveByDigestAndEvictFifo)
{
    TraceRepository::Config config;
    config.uploadCapacity = 2;
    TraceRepository repo(config);

    std::string first = repo.addUpload(miniTrace("first", 8));
    std::string second = repo.addUpload(miniTrace("second", 12));
    ASSERT_EQ(first.size(), 16u);
    EXPECT_NE(first, second);
    EXPECT_TRUE(repo.knowsDigest(first));
    EXPECT_TRUE(repo.knowsDigest(second));

    ResolvedTrace resolved = repo.resolve(TraceRef::byDigest(first));
    EXPECT_EQ(resolved.name, "first");
    EXPECT_EQ(resolved.digest, first);

    // Re-uploading refreshes rather than duplicating, so the third
    // distinct upload evicts `second` (now the oldest), not `first`.
    EXPECT_EQ(repo.addUpload(miniTrace("first", 8)), first);
    std::string third = repo.addUpload(miniTrace("third", 16));
    EXPECT_TRUE(repo.knowsDigest(first));
    EXPECT_TRUE(repo.knowsDigest(third));
    EXPECT_FALSE(repo.knowsDigest(second));
    EXPECT_THROW(repo.resolve(TraceRef::byDigest(second)),
                 UnknownTraceError);
}

TEST(TraceRepository, CacheDirMapsDigestsAndReusesNames)
{
    TempDir dir("jcache_ref_cachedir");
    trace::Trace t = miniTrace("cached", 32);
    std::string digest = trace::contentDigest(t);
    trace::ensureReplayCache(t, dir.path);

    TraceRepository::Config config;
    config.cacheDir = dir.path;
    TraceRepository repo(config);

    // A digest ref resolves straight off the .jcrc file: mapped-only,
    // no in-memory records until materialization is asked for.
    ASSERT_TRUE(repo.knowsDigest(digest));
    ResolvedTrace mapped = repo.resolve(TraceRef::byDigest(digest));
    EXPECT_EQ(mapped.trace, nullptr);
    ASSERT_NE(mapped.source, nullptr);
    EXPECT_EQ(mapped.name, "cached");
    EXPECT_EQ(mapped.identity, trace::traceIdentity(t));

    ResolvedTrace materialized =
        repo.resolveMaterialized(TraceRef::byDigest(digest));
    ASSERT_NE(materialized.trace, nullptr);
    EXPECT_EQ(materialized.trace->records(), t.records());

    // A generating repository writes the cache files once; a second
    // repository then serves the name from the cache directory via
    // the name-ref file instead of regenerating.
    TraceRepository::Config gen_config;
    gen_config.generateUnknownNames = true;
    gen_config.cacheDir = dir.path;
    TraceRepository generator(gen_config);
    ResolvedTrace generated =
        generator.resolve(TraceRef::byName("ccom"));

    TraceRepository reader(gen_config);
    ResolvedTrace reread = reader.resolve(TraceRef::byName("ccom"));
    EXPECT_EQ(reread.identity, generated.identity);
    EXPECT_TRUE(
        fs::exists(trace::replayCachePath(dir.path,
                                          generated.digest)));
}

} // namespace
} // namespace jcache::sim
