/**
 * @file
 * Tests for the wire-protocol JSON parser (service/json_value.hh):
 * primitives, nesting, escapes, accessors, and the error paths a
 * hostile or broken client can trigger.
 */

#include <string>

#include <gtest/gtest.h>

#include "service/json_value.hh"
#include "stats/json.hh"

using jcache::service::JsonValue;

namespace
{

JsonValue
parseOk(const std::string& text)
{
    std::string error;
    JsonValue v = JsonValue::parse(text, &error);
    EXPECT_EQ(error, "") << "while parsing: " << text;
    return v;
}

std::string
parseError(const std::string& text)
{
    std::string error;
    JsonValue v = JsonValue::parse(text, &error);
    EXPECT_TRUE(v.isNull()) << "expected failure parsing: " << text;
    EXPECT_NE(error, "") << "expected error parsing: " << text;
    return error;
}

} // namespace

TEST(JsonValue, ParsesPrimitives)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").boolean());
    EXPECT_FALSE(parseOk("false").boolean());
    EXPECT_DOUBLE_EQ(parseOk("42").number(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-3.5e2").number(), -350.0);
    EXPECT_EQ(parseOk("\"hi\"").string(), "hi");
}

TEST(JsonValue, ParsesNestedDocument)
{
    JsonValue v = parseOk(
        "{\"type\": \"run\", \"config\": {\"size_bytes\": 8192},"
        " \"points\": [1, 2, 3], \"flush\": true}");
    EXPECT_TRUE(v.isObject());
    EXPECT_EQ(v.getString("type"), "run");
    EXPECT_DOUBLE_EQ(v.get("config").getNumber("size_bytes", 0), 8192);
    ASSERT_EQ(v.get("points").items().size(), 3u);
    EXPECT_DOUBLE_EQ(v.get("points").items()[1].number(), 2.0);
    EXPECT_TRUE(v.getBool("flush", false));
}

TEST(JsonValue, MissingKeysChainToNullSentinel)
{
    JsonValue v = parseOk("{\"a\": {\"b\": 1}}");
    EXPECT_TRUE(v.get("nope").isNull());
    // Chained lookups through an absent member must not crash.
    EXPECT_TRUE(v.get("nope").get("deeper").get("still").isNull());
    EXPECT_EQ(v.getString("nope", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(v.getNumber("nope", 7.0), 7.0);
    EXPECT_FALSE(v.has("nope"));
    EXPECT_TRUE(v.has("a"));
}

TEST(JsonValue, FallbacksCoverMistypedMembers)
{
    JsonValue v = parseOk("{\"n\": \"text\", \"s\": 12}");
    EXPECT_DOUBLE_EQ(v.getNumber("n", -1.0), -1.0);
    EXPECT_EQ(v.getString("s", "dflt"), "dflt");
    EXPECT_TRUE(v.getBool("n", true));
}

TEST(JsonValue, DecodesEscapes)
{
    JsonValue v = parseOk(
        "\"a\\\"b\\\\c\\/d\\b\\f\\n\\r\\te\\u0041\"");
    EXPECT_EQ(v.string(), "a\"b\\c/d\b\f\n\r\teA");
}

TEST(JsonValue, DecodesSurrogatePairsToUtf8)
{
    // U+1F600 as a surrogate pair; expect 4-byte UTF-8.
    JsonValue v = parseOk("\"\\uD83D\\uDE00\"");
    EXPECT_EQ(v.string(), "\xF0\x9F\x98\x80");
    // Basic-plane escape becomes 3-byte UTF-8.
    EXPECT_EQ(parseOk("\"\\u20AC\"").string(), "\xE2\x82\xAC");
}

TEST(JsonValue, RejectsMalformedDocuments)
{
    parseError("");
    parseError("{");
    parseError("[1, 2");
    parseError("{\"a\": }");
    parseError("{\"a\" 1}");
    parseError("\"unterminated");
    parseError("\"bad escape \\q\"");
    parseError("\"lone surrogate \\uD83D\"");
    parseError("tru");
    parseError("01");  // leading zero
    parseError("{} trailing");
    parseError("nan");
}

TEST(JsonValue, ErrorsCarryByteOffset)
{
    std::string error = parseError("{\"a\": 1,}");
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(JsonValue, RejectsExcessiveNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    parseError(deep);
    // Just inside the cap still parses.
    std::string ok(40, '[');
    ok += std::string(40, ']');
    parseOk(ok);
}

TEST(JsonValue, RoundTripsJsonWriterOutput)
{
    std::ostringstream oss;
    jcache::stats::JsonWriter json(oss);
    json.beginObject();
    json.field("name", "control \x01 and \"quote\"");
    json.field("count", 12345.0);
    json.field("flag", true);
    json.beginArray("labels");
    json.element("1KB");
    json.element("2KB");
    json.endArray();
    json.endObject();

    JsonValue v = parseOk(oss.str());
    EXPECT_EQ(v.getString("name"), "control \x01 and \"quote\"");
    EXPECT_DOUBLE_EQ(v.getNumber("count", 0), 12345.0);
    EXPECT_TRUE(v.getBool("flag", false));
    ASSERT_EQ(v.get("labels").items().size(), 2u);
    EXPECT_EQ(v.get("labels").items()[0].string(), "1KB");
}

TEST(JsonValue, LiteralFieldsAreStringsNotBooleans)
{
    // A string-literal value must select the string overload of
    // JsonWriter::field(), not decay to the bool overload.
    std::ostringstream oss;
    jcache::stats::JsonWriter json(oss);
    json.beginObject();
    json.field("type", "run");
    json.endObject();
    JsonValue v = parseOk(oss.str());
    EXPECT_TRUE(v.get("type").isString());
    EXPECT_EQ(v.getString("type"), "run");
}
