file(REMOVE_RECURSE
  "CMakeFiles/block_copy.dir/block_copy.cc.o"
  "CMakeFiles/block_copy.dir/block_copy.cc.o.d"
  "block_copy"
  "block_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
