/**
 * @file
 * Static checks for CacheLine mask invariants.
 */

#include "core/line.hh"

namespace jcache::core
{

// CacheLine is a plain aggregate; all behaviour lives in the header.
// Pin the size so an accidental payload addition (which would slow the
// hot lookup path) is caught at compile time.
static_assert(sizeof(CacheLine) == 40,
              "CacheLine grew beyond tag + masks + replacement stamps");

} // namespace jcache::core
