/**
 * @file
 * Sweep axes and the shared trace set.
 *
 * The paper sweeps two axes: cache size 1KB-128KB at 16B lines, and
 * line size 4B-64B at 8KB.  TraceSet generates the six benchmark
 * traces once and shares them across every experiment in a process
 * (trace generation costs far more than a replay).
 */

#ifndef JCACHE_SIM_SWEEPS_HH
#define JCACHE_SIM_SWEEPS_HH

#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace jcache::sim
{

/** 1KB..128KB, the paper's cache-size axis (Figures 2, 10, 13, ...). */
std::vector<Count> standardCacheSizes();

/** 4B..64B, the paper's line-size axis (Figures 1, 11, 15, ...). */
std::vector<unsigned> standardLineSizes();

/**
 * The six benchmark traces, generated once.
 */
class TraceSet
{
  public:
    explicit TraceSet(const workloads::WorkloadConfig& config = {});

    const std::vector<trace::Trace>& traces() const { return traces_; }

    /** Trace by benchmark name; throws FatalError if unknown. */
    const trace::Trace& get(const std::string& name) const;

    std::size_t size() const { return traces_.size(); }

    /**
     * Process-wide shared instance at scale 1.  Benches and tests use
     * this so the traces are generated exactly once per binary.
     */
    static const TraceSet& standard();

  private:
    std::vector<trace::Trace> traces_;
};

} // namespace jcache::sim

#endif // JCACHE_SIM_SWEEPS_HH
