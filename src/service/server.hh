/**
 * @file
 * The jcached TCP front end.
 *
 * Server owns a loopback Listener and a Service, accepts connections
 * on the calling thread, and handles each connection on its own
 * thread: read frame, route through Service::handle(), write the
 * response frame, repeat until the peer closes or violates the
 * protocol.  A protocol violation (truncated or oversized frame) is
 * answered best-effort and closes only that connection; the daemon
 * keeps serving others — that property is pinned by the robustness
 * tests.
 *
 * Shutdown is graceful from either direction: requestStop() (the
 * SIGINT/SIGTERM path — it only sets an atomic flag, so it is safe
 * from a signal handler) or an in-band `shutdown` request.  Both stop
 * the accept loop and drain in-flight connections before serve()
 * returns.
 */

#ifndef JCACHE_SERVICE_SERVER_HH
#define JCACHE_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hh"
#include "service/service.hh"

namespace jcache::service
{

/** Tunables of one Server instance. */
struct ServerConfig
{
    /** Loopback port to bind; 0 picks an ephemeral port. */
    std::uint16_t port = 7421;

    /**
     * Per-connection socket timeout in milliseconds.  A connection
     * idle longer than this (or stalled mid-frame) is closed.
     */
    unsigned connectionTimeoutMillis = 30000;

    ServiceConfig service;
};

/**
 * Accept loop plus per-connection framing around a Service.
 */
class Server
{
  public:
    explicit Server(const ServerConfig& config);

    /** Joins every connection thread. */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Bind the listener.  Returns false (and sets `error` when
     * non-null) if the port is unavailable.
     */
    bool start(std::string* error = nullptr);

    /** The bound port; meaningful after start(). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Accept and serve until stopped.  Returns after every in-flight
     * connection has drained.
     */
    void serve();

    /**
     * Stop accepting and begin draining.  Async-signal-safe: only
     * stores to an atomic flag.
     */
    void requestStop() { stop_.store(true); }

    /** The request router (for tests and in-process callers). */
    Service& service() { return service_; }

  private:
    void handleConnection(net::Socket socket, std::uint64_t id);
    void reapFinished();

    ServerConfig config_;
    Service service_;
    net::Listener listener_;
    std::atomic<bool> stop_{false};

    std::mutex threads_mutex_;
    std::list<std::pair<std::uint64_t, std::thread>> threads_;
    std::vector<std::uint64_t> finished_;
    std::uint64_t next_id_ = 0;
};

} // namespace jcache::service

#endif // JCACHE_SERVICE_SERVER_HH
