/**
 * @file
 * TracedMemory/TracedArray are header-only templates; this unit
 * instantiates the element types the workloads use so template errors
 * surface when the library builds, not when a client does.
 */

#include "workloads/traced_memory.hh"

namespace jcache::workloads
{

template class TracedArray<std::int32_t>;
template class TracedArray<std::uint32_t>;
template class TracedArray<std::int64_t>;
template class TracedArray<double>;

} // namespace jcache::workloads
