/**
 * @file
 * Implementation of the JCRC replay cache (see replay_cache.hh for
 * the format).
 */

#include "trace/replay_cache.hh"

#include <array>
#include <cstring>
#include <filesystem>
#include <optional>

#include "trace/varint.hh"
#include "util/bitops.hh"
#include "util/fs.hh"

#if defined(__unix__) || defined(__APPLE__)
#define JCACHE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define JCACHE_HAVE_MMAP 0
#endif

namespace jcache::trace
{

namespace
{

constexpr std::array<char, 4> kMagicReplayCache = {'J', 'C', 'R', 'C'};

/** Fixed header bytes before the trace name. */
constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 8 + 8 + 8 + 16 + 4;

constexpr std::size_t kDigestBytes = 16;

bool
isHexDigest(const std::string& digest)
{
    if (digest.size() != kDigestBytes)
        return false;
    for (char c : digest) {
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

} // namespace

std::string
replayCachePath(const std::string& dir, const std::string& digestHex)
{
    return dir + "/" + digestHex + ".jcrc";
}

void
writeReplayCache(const Trace& trace, const std::string& path,
                 std::size_t blockRecords)
{
    if (blockRecords == 0)
        blockRecords = 1;

    const std::string digest = contentDigest(trace);
    fatalIf(!isHexDigest(digest),
            "unexpected trace digest format: " + digest);

    const std::size_t count = trace.size();
    const std::size_t block_count =
        (count + blockRecords - 1) / blockRecords;

    // Encode every block payload first, noting where each begins, so
    // the offset table can be emitted with absolute file offsets.
    std::string payload;
    payload.reserve(count * 3);
    std::vector<std::uint64_t> starts;
    starts.reserve(block_count);
    for (std::size_t b = 0; b < block_count; ++b) {
        starts.push_back(payload.size());
        const std::size_t first = b * blockRecords;
        const std::size_t n = std::min(blockRecords, count - first);
        Addr prev_addr = 0; // reset per block: blocks decode alone
        for (std::size_t i = 0; i < n; ++i) {
            const TraceRecord& r = trace[first + i];
            const unsigned size_log2 = floorLog2(r.size);
            const auto meta = static_cast<std::uint8_t>(
                (r.type == RefType::Write ? 1 : 0) | (size_log2 << 1));
            payload.push_back(static_cast<char>(meta));
            appendVarint(payload, zigzagEncode(
                                      static_cast<std::int64_t>(r.addr) -
                                      static_cast<std::int64_t>(prev_addr)));
            appendVarint(payload, r.instrDelta);
            prev_addr = r.addr;
        }
    }

    const std::string& name = trace.name();
    const std::size_t payload_base =
        kHeaderBytes + name.size() + 8 * block_count;

    std::string out;
    out.reserve(payload_base + payload.size());
    out.append(kMagicReplayCache.data(), kMagicReplayCache.size());
    appendLe<std::uint16_t>(out, kReplayCacheVersion);
    appendLe<std::uint16_t>(out, 0); // flags, reserved
    appendLe<std::uint64_t>(out, count);
    appendLe<std::uint64_t>(out, blockRecords);
    appendLe<std::uint64_t>(out, block_count);
    out.append(digest);
    appendLe<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
    for (std::uint64_t start : starts)
        appendLe<std::uint64_t>(out, payload_base + start);
    out.append(payload);

    util::atomicWriteFile(path, out);
}

std::string
ensureReplayCache(const Trace& trace, const std::string& dir,
                  std::size_t blockRecords)
{
    util::ensureDirectory(dir);
    const std::string path = replayCachePath(dir, contentDigest(trace));
    if (!std::filesystem::exists(path))
        writeReplayCache(trace, path, blockRecords);
    return path;
}

void
MappedReplayCache::corrupt(const std::string& message) const
{
    throw ReplayCacheError("corrupt replay cache: " + message +
                           " [file: " + path_ + "]");
}

MappedReplayCache::MappedReplayCache(const std::string& path)
    : path_(path)
{
#if JCACHE_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
        struct stat st = {};
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            void* map = ::mmap(nullptr,
                               static_cast<std::size_t>(st.st_size),
                               PROT_READ, MAP_PRIVATE, fd, 0);
            if (map != MAP_FAILED) {
                data_ = static_cast<const unsigned char*>(map);
                size_ = static_cast<std::size_t>(st.st_size);
                mapped_ = true;
            }
        }
        ::close(fd);
    }
#endif
    if (!mapped_) {
        std::optional<std::string> bytes = util::readFileIfExists(path);
        if (!bytes) {
            throw util::FsError("cannot open replay cache: " + path);
        }
        buffer_ = std::move(*bytes);
        data_ = reinterpret_cast<const unsigned char*>(buffer_.data());
        size_ = buffer_.size();
    }

    if (size_ < kHeaderBytes)
        corrupt("file shorter than the header");

    const unsigned char* p = data_;
    const unsigned char* end = data_ + size_;
    if (std::memcmp(p, kMagicReplayCache.data(),
                    kMagicReplayCache.size()) != 0)
        corrupt("bad magic");
    p += kMagicReplayCache.size();

    std::uint16_t version = 0;
    std::uint16_t flags = 0;
    std::uint64_t count = 0;
    std::uint64_t block_records = 0;
    std::uint64_t block_count = 0;
    readLe(p, end, version);
    readLe(p, end, flags);
    readLe(p, end, count);
    readLe(p, end, block_records);
    readLe(p, end, block_count);
    if (version != kReplayCacheVersion)
        corrupt("unsupported version " + std::to_string(version));
    if (flags != 0)
        corrupt("reserved flags set: " + std::to_string(flags));
    if (block_records == 0)
        corrupt("zero records per block");
    const std::uint64_t expected_blocks =
        (count + block_records - 1) / block_records;
    if (block_count != expected_blocks) {
        corrupt("block count " + std::to_string(block_count) +
                " does not cover " + std::to_string(count) + " records");
    }

    digest_.assign(reinterpret_cast<const char*>(p), kDigestBytes);
    p += kDigestBytes;
    if (!isHexDigest(digest_))
        corrupt("malformed content digest");

    std::uint32_t name_len = 0;
    readLe(p, end, name_len);
    if (name_len > kMaxTraceNameBytes)
        corrupt("trace name length " + std::to_string(name_len) +
                " exceeds the cap");
    if (static_cast<std::uint64_t>(end - p) <
        name_len + 8ull * block_count)
        corrupt("truncated before the offset table ends");
    name_.assign(reinterpret_cast<const char*>(p), name_len);
    p += name_len;

    count_ = count;
    block_records_ = static_cast<std::size_t>(block_records);
    block_count_ = static_cast<std::size_t>(block_count);
    offsets_ = p;
    identity_ = name_ + "#" + digest_ + "#" + std::to_string(count_);

    // The offset table must be monotone and in bounds; the payload
    // bytes themselves are validated by decodeBlock.
    const std::uint64_t payload_base =
        kHeaderBytes + name_len + 8ull * block_count;
    std::uint64_t prev = payload_base;
    for (std::size_t b = 0; b < block_count_; ++b) {
        const unsigned char* op = offsets_ + 8 * b;
        std::uint64_t offset = 0;
        readLe(op, end, offset);
        if (offset < prev || offset > size_)
            corrupt("offset table entry " + std::to_string(b) +
                    " out of order or out of bounds");
        prev = offset;
    }
}

MappedReplayCache::~MappedReplayCache()
{
#if JCACHE_HAVE_MMAP
    if (mapped_)
        ::munmap(const_cast<unsigned char*>(data_), size_);
#endif
}

std::size_t
MappedReplayCache::blockSize(std::size_t index) const
{
    const std::size_t first = index * block_records_;
    return std::min(block_records_,
                    static_cast<std::size_t>(count_) - first);
}

void
MappedReplayCache::decodeBlock(std::size_t index,
                               std::vector<TraceRecord>& out) const
{
    const unsigned char* op = offsets_ + 8 * index;
    std::uint64_t start = 0;
    readLe(op, data_ + size_, start);
    std::uint64_t stop = size_;
    if (index + 1 < block_count_) {
        const unsigned char* np = offsets_ + 8 * (index + 1);
        readLe(np, data_ + size_, stop);
    }

    const unsigned char* p = data_ + start;
    const unsigned char* end = data_ + stop;
    const std::size_t n = blockSize(index);
    out.clear();
    out.reserve(n);
    Addr prev_addr = 0;
    for (std::size_t i = 0; i < n; ++i) {
        auto what = [&] {
            return "record " + std::to_string(i) + " of block " +
                   std::to_string(index);
        };
        if (p >= end)
            corrupt("truncated at " + what());
        const unsigned char meta = *p++;
        if ((meta & ~0x07u) != 0)
            corrupt("reserved meta bits set in " + what());
        TraceRecord r;
        r.type = (meta & 1) ? RefType::Write : RefType::Read;
        r.size = static_cast<std::uint8_t>(1u << ((meta >> 1) & 0x3));
        std::uint64_t delta = 0;
        if (!readVarint(p, end, delta))
            corrupt("bad address delta in " + what());
        r.addr = static_cast<Addr>(static_cast<std::int64_t>(prev_addr) +
                                   zigzagDecode(delta));
        std::uint64_t instr = 0;
        if (!readVarint(p, end, instr))
            corrupt("bad instruction delta in " + what());
        if (instr > 0xffffffffull)
            corrupt("instruction delta out of range in " + what());
        r.instrDelta = static_cast<std::uint32_t>(instr);
        prev_addr = r.addr;
        out.push_back(r);
    }
    if (p != end)
        corrupt("trailing bytes after block " + std::to_string(index));
}

class MappedReplayCache::Cursor final : public BlockCursor
{
  public:
    explicit Cursor(const MappedReplayCache& owner) : owner_(&owner) {}

    bool next(TraceBlock& out) override
    {
        if (block_ >= owner_->blockCount())
            return false;
        owner_->decodeBlock(block_, buffer_);
        out = TraceBlock{buffer_.data(), buffer_.size(),
                         block_ * owner_->blockRecords()};
        ++block_;
        return true;
    }

  private:
    const MappedReplayCache* owner_;
    std::size_t block_ = 0;
    std::vector<TraceRecord> buffer_;
};

std::unique_ptr<BlockCursor>
MappedReplayCache::blocks(std::size_t /*blockRecords*/) const
{
    return std::make_unique<Cursor>(*this);
}

} // namespace jcache::trace
