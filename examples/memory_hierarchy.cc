/**
 * @file
 * Memory hierarchy study: a full two-level stack assembled from the
 * library's building blocks —
 *
 *   CPU -> L1 (8KB WT, write-validate) -> write cache (5 x 8B)
 *       -> L2 (64KB WB, 32B lines) -> main memory
 *
 * with a victim cache attached to the L1 and traffic meters between
 * every level, replaying the `grr` router benchmark.  Demonstrates
 * the Section 3.3 recommendation (small parity-protected WT L1 with
 * a write cache, ECC WB L2) and cold-stop vs flush-stop accounting.
 */

#include <iostream>

#include "core/data_cache.hh"
#include "core/victim_cache.hh"
#include "core/write_cache.hh"
#include "mem/main_memory.hh"
#include "mem/second_level_cache.hh"
#include "mem/traffic_meter.hh"
#include "stats/counter.hh"
#include "stats/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace jcache;

    trace::Trace trace =
        workloads::generateTrace(*workloads::makeWorkload("grr"));

    // Assemble the stack bottom-up.
    mem::MainMemory memory(20);
    mem::TrafficMeter l2_back(&memory);

    core::CacheConfig l2_config;
    l2_config.sizeBytes = 64 * 1024;
    l2_config.lineBytes = 32;
    l2_config.hitPolicy = core::WriteHitPolicy::WriteBack;
    l2_config.missPolicy = core::WriteMissPolicy::FetchOnWrite;
    mem::SecondLevelCache l2(l2_config, l2_back);

    mem::TrafficMeter l1_back(&l2);
    core::WriteCache write_cache(5, 8, &l1_back);

    core::CacheConfig l1_config;
    l1_config.sizeBytes = 8 * 1024;
    l1_config.lineBytes = 16;
    l1_config.hitPolicy = core::WriteHitPolicy::WriteThrough;
    l1_config.missPolicy = core::WriteMissPolicy::WriteValidate;
    core::DataCache l1(l1_config, write_cache);

    core::VictimCache victim_cache(4, 16, &write_cache);
    l1.attachVictimCache(&victim_cache);

    // Replay.
    Count instructions = 0;
    for (const trace::TraceRecord& record : trace) {
        instructions += record.instrDelta;
        l1.access(record);
    }
    // Flush stop: drain every level.
    write_cache.flush();
    victim_cache.flush();
    l2.flush();

    const core::CacheStats& s1 = l1.stats();
    const core::CacheStats& s2 = l2.stats();

    stats::TextTable table("Two-level hierarchy on grr (" +
                           std::to_string(trace.size()) +
                           " refs, " + std::to_string(instructions) +
                           " instr)");
    table.setHeader({"metric", "value"});
    auto row = [&](const std::string& k, const std::string& v) {
        table.addRow({k, v});
    };
    auto pct = [](double v) { return stats::formatFixed(v, 2) + "%"; };

    row("L1 miss ratio",
        pct(100.0 * stats::ratio(s1.countedMisses(), s1.accesses())));
    row("L1 victim-cache hits", std::to_string(s1.victimCacheHits));
    row("write-cache merge rate",
        pct(100.0 * write_cache.fractionRemoved()));
    row("L1->L2 fetch transactions",
        std::to_string(l1_back.fetches().transactions));
    row("L1->L2 write transactions (post write cache)",
        std::to_string(l1_back.writeThroughs().transactions));
    row("L2 miss ratio",
        pct(100.0 * stats::ratio(s2.countedMisses(), s2.accesses())));
    row("L2->memory transactions (cold stop)",
        std::to_string(l2_back.totalTransactions()));
    row("L2->memory flush transactions",
        std::to_string(l2_back.flushBacks().transactions));
    row("memory busy cycles", std::to_string(memory.busyCycles()));
    row("memory cycles per instruction",
        stats::formatFixed(stats::ratio(memory.busyCycles(),
                                        instructions), 4));
    table.print(std::cout);

    std::cout <<
        "\nThe write cache removes most store traffic before it "
        "reaches the L2, the victim\ncache recovers direct-mapped "
        "conflicts, and the write-back L2 keeps memory\ntraffic to "
        "misses plus a small flushed-dirty residue.\n";
    return 0;
}
