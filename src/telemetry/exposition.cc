/**
 * @file
 * Implementation of exposition rendering and parsing.
 */

#include "telemetry/exposition.hh"

#include <cstdlib>
#include <limits>
#include <sstream>

#include "stats/json.hh"

namespace jcache::telemetry
{

namespace
{

/** Escape a HELP text: backslash and newline. */
std::string
escapeHelp(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Escape a label value: backslash, quote and newline. */
std::string
escapeLabelValue(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** `{k="v",...}` or empty when there are no labels. */
std::string
labelBlock(const Labels& labels,
           const std::string& extra_key = "",
           const std::string& extra_value = "")
{
    if (labels.empty() && extra_key.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += k + "=\"" + escapeLabelValue(v) + "\"";
    }
    if (!extra_key.empty()) {
        if (!first)
            out += ',';
        out += extra_key + "=\"" + escapeLabelValue(extra_value) +
               "\"";
    }
    out += '}';
    return out;
}

std::string
formatNumber(double value)
{
    if (value == std::numeric_limits<double>::infinity())
        return "+Inf";
    if (value == -std::numeric_limits<double>::infinity())
        return "-Inf";
    return stats::JsonWriter::number(value);
}

const char*
typeName(InstrumentKind kind)
{
    switch (kind) {
      case InstrumentKind::Counter:
        return "counter";
      case InstrumentKind::Gauge:
        return "gauge";
      case InstrumentKind::Histogram:
        return "histogram";
    }
    return "untyped";
}

bool
nameHead(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           c == '_' || c == ':';
}

bool
nameTail(char c)
{
    return nameHead(c) || (c >= '0' && c <= '9');
}

/** Scan a metric name at `pos`; empty result means no name there. */
std::string
scanName(const std::string& line, std::size_t& pos)
{
    std::size_t start = pos;
    if (pos >= line.size() || !nameHead(line[pos]))
        return "";
    while (pos < line.size() && nameTail(line[pos]))
        ++pos;
    return line.substr(start, pos - start);
}

bool
parseValue(const std::string& text, double& value)
{
    if (text == "+Inf" || text == "Inf") {
        value = std::numeric_limits<double>::infinity();
        return true;
    }
    if (text == "-Inf") {
        value = -std::numeric_limits<double>::infinity();
        return true;
    }
    if (text == "NaN") {
        value = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    const char* begin = text.c_str();
    char* end = nullptr;
    value = std::strtod(begin, &end);
    return end != begin && *end == '\0';
}

/** Unescape a quoted label value body. */
std::string
unescapeLabelValue(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            char next = s[++i];
            if (next == 'n')
                out += '\n';
            else
                out += next;
        } else {
            out += s[i];
        }
    }
    return out;
}

/** Parse `{k="v",...}` starting at `pos` (which points at '{'). */
bool
parseLabels(const std::string& line, std::size_t& pos,
            Labels& labels)
{
    ++pos; // consume '{'
    while (pos < line.size() && line[pos] != '}') {
        std::string key = scanName(line, pos);
        if (key.empty() || pos >= line.size() || line[pos] != '=')
            return false;
        ++pos;
        if (pos >= line.size() || line[pos] != '"')
            return false;
        ++pos;
        std::string raw;
        while (pos < line.size() && line[pos] != '"') {
            if (line[pos] == '\\' && pos + 1 < line.size()) {
                raw += line[pos];
                ++pos;
            }
            raw += line[pos];
            ++pos;
        }
        if (pos >= line.size())
            return false;
        ++pos; // closing quote
        labels.emplace_back(key, unescapeLabelValue(raw));
        if (pos < line.size() && line[pos] == ',')
            ++pos;
    }
    if (pos >= line.size())
        return false;
    ++pos; // '}'
    return true;
}

} // namespace

void
render(std::ostream& os, const std::vector<FamilySnapshot>& families)
{
    for (const FamilySnapshot& family : families) {
        os << "# HELP " << family.name << ' '
           << escapeHelp(family.help) << '\n';
        os << "# TYPE " << family.name << ' '
           << typeName(family.kind) << '\n';
        for (const SampleSnapshot& sample : family.samples) {
            os << family.name << labelBlock(sample.labels) << ' '
               << formatNumber(sample.value) << '\n';
        }
        for (const HistogramSnapshot& histogram :
             family.histograms) {
            std::uint64_t cumulative = 0;
            for (const auto& [bound, count] : histogram.cumulative) {
                cumulative = count;
                os << family.name << "_bucket"
                   << labelBlock(histogram.labels, "le",
                                 formatNumber(bound))
                   << ' ' << cumulative << '\n';
            }
            os << family.name << "_bucket"
               << labelBlock(histogram.labels, "le", "+Inf") << ' '
               << histogram.count << '\n';
            os << family.name << "_sum"
               << labelBlock(histogram.labels) << ' '
               << formatNumber(histogram.sum) << '\n';
            os << family.name << "_count"
               << labelBlock(histogram.labels) << ' '
               << histogram.count << '\n';
        }
    }
}

std::string
renderRegistry()
{
    std::ostringstream oss;
    render(oss, Registry::instance().snapshot());
    return oss.str();
}

bool
parse(const std::string& text, std::vector<ParsedFamily>& families,
      std::string* error)
{
    families.clear();
    std::istringstream lines(text);
    std::string line;
    std::size_t line_number = 0;

    auto fail = [&](const std::string& what) {
        if (error) {
            *error = "line " + std::to_string(line_number) + ": " +
                     what;
        }
        return false;
    };

    while (std::getline(lines, line)) {
        ++line_number;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;

        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            bool is_help = line[2] == 'H';
            std::size_t pos = 7;
            std::string name = scanName(line, pos);
            if (name.empty())
                return fail("missing metric name in header");
            if (pos < line.size() && line[pos] == ' ')
                ++pos;
            std::string rest = line.substr(pos);
            if (families.empty() || families.back().name != name) {
                ParsedFamily family;
                family.name = name;
                families.push_back(std::move(family));
            }
            if (is_help)
                families.back().help = rest;
            else
                families.back().type = rest;
            continue;
        }
        if (line[0] == '#')
            return fail("comment is neither # HELP nor # TYPE");

        std::size_t pos = 0;
        ParsedSample sample;
        sample.name = scanName(line, pos);
        if (sample.name.empty())
            return fail("sample does not start with a metric name");
        if (pos < line.size() && line[pos] == '{') {
            if (!parseLabels(line, pos, sample.labels))
                return fail("malformed label block");
        }
        if (pos >= line.size() || line[pos] != ' ')
            return fail("expected ' ' before the sample value");
        ++pos;
        std::string value_text = line.substr(pos);
        // An optional timestamp (an integer) may follow the value.
        std::size_t space = value_text.find(' ');
        if (space != std::string::npos)
            value_text = value_text.substr(0, space);
        if (!parseValue(value_text, sample.value))
            return fail("malformed sample value '" + value_text +
                        "'");

        // A histogram's _bucket/_sum/_count samples belong to the
        // family whose name prefixes theirs.
        if (families.empty() ||
            sample.name.rfind(families.back().name, 0) != 0) {
            ParsedFamily family;
            family.name = sample.name;
            families.push_back(std::move(family));
        }
        families.back().samples.push_back(std::move(sample));
    }
    return true;
}

} // namespace jcache::telemetry
