/**
 * @file
 * Trace validation.
 */

#include "trace/trace.hh"

#include <string>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace jcache::trace
{

bool
isValid(const TraceRecord& record)
{
    if (record.size == 0 || record.size > 8)
        return false;
    if (!isPowerOfTwo(record.size))
        return false;
    if (record.type != RefType::Read && record.type != RefType::Write)
        return false;
    return true;
}

void
validate(const Trace& trace)
{
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!isValid(trace[i])) {
            fatal("trace '" + trace.name() + "' record " +
                  std::to_string(i) + " is malformed");
        }
    }
}

} // namespace jcache::trace
