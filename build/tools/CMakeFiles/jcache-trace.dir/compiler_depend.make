# Empty compiler generated dependencies file for jcache-trace.
# This may be replaced when dependencies are built.
