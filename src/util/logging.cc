/**
 * @file
 * Implementation of the fatal()/panic() error reporters.
 */

#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace jcache
{

void
fatal(const std::string& message)
{
    throw FatalError(message);
}

void
panic(const std::string& message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

} // namespace jcache
