/**
 * @file
 * linpack: the paper's numeric benchmark #1.
 *
 * Re-implements the LINPACK 100x100 kernel: dgefa (LU factorization
 * with partial pivoting, column-major, daxpy inner loop) followed by
 * dgesl (forward/back substitution).  The reference behaviour the
 * paper leans on — saxpy's read-modify-write of matrix rows, unit
 * stride through an 80KB matrix that does not fit in small caches —
 * comes directly from running the real algorithm through traced
 * storage.
 */

#ifndef JCACHE_WORKLOADS_LINPACK_HH
#define JCACHE_WORKLOADS_LINPACK_HH

#include "workloads/workload.hh"

namespace jcache::workloads
{

/**
 * LINPACK 100x100 LU factorization and solve.
 */
class LinpackWorkload : public Workload
{
  public:
    /**
     * @param config standard knobs; scale repeats the
     *               factor-and-solve cycle.
     * @param n      matrix order (default 100, as in the paper).
     */
    explicit LinpackWorkload(const WorkloadConfig& config = {},
                             unsigned n = 100)
        : Workload(config), n_(n)
    {}

    std::string name() const override { return "linpack"; }
    std::string description() const override
    {
        return "numeric, 100x100 linpack";
    }

    void run(trace::TraceRecorder& recorder) const override;

  private:
    unsigned n_;
};

} // namespace jcache::workloads

#endif // JCACHE_WORKLOADS_LINPACK_HH
