/**
 * @file
 * Unit tests for CacheGeometry address decomposition.
 */

#include <gtest/gtest.h>

#include "core/geometry.hh"

namespace jcache::core
{
namespace
{

CacheConfig
config(Count size, unsigned line, unsigned assoc)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.lineBytes = line;
    c.assoc = assoc;
    return c;
}

TEST(Geometry, DirectMapped8K16B)
{
    CacheGeometry g(config(8 * 1024, 16, 1));
    EXPECT_EQ(g.numSets(), 512u);
    EXPECT_EQ(g.numLines(), 512u);
    EXPECT_EQ(g.lineBytes(), 16u);
    EXPECT_EQ(g.sizeBytes(), 8u * 1024u);
}

TEST(Geometry, SetAssociativeSetCount)
{
    CacheGeometry g(config(8 * 1024, 16, 4));
    EXPECT_EQ(g.numSets(), 128u);
    EXPECT_EQ(g.numLines(), 512u);
}

TEST(Geometry, OffsetAndLineAddr)
{
    CacheGeometry g(config(8 * 1024, 16, 1));
    EXPECT_EQ(g.offset(0x12345), 0x5u);
    EXPECT_EQ(g.lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(g.offset(0x12340), 0u);
}

TEST(Geometry, SetIndexWraps)
{
    CacheGeometry g(config(8 * 1024, 16, 1));
    // 512 sets: index field is bits [4, 13).
    EXPECT_EQ(g.setIndex(0x0), 0u);
    EXPECT_EQ(g.setIndex(0x10), 1u);
    EXPECT_EQ(g.setIndex(0x2000), 0u);  // 8KB aliases back to set 0
    EXPECT_EQ(g.setIndex(0x2010), 1u);
}

TEST(Geometry, TagDistinguishesAliases)
{
    CacheGeometry g(config(8 * 1024, 16, 1));
    EXPECT_NE(g.tag(0x0), g.tag(0x2000));
    EXPECT_EQ(g.tag(0x0), g.tag(0xf));
}

TEST(Geometry, LineAddrFromTagRoundTrip)
{
    for (unsigned assoc : {1u, 2u, 4u}) {
        CacheGeometry g(config(4 * 1024, 32, assoc));
        for (Addr addr : {Addr{0x0}, Addr{0x123456f8}, Addr{0xabcdef00},
                          Addr{0x7fffffffffc0}}) {
            Addr line = g.lineAddr(addr);
            EXPECT_EQ(g.lineAddrFromTag(g.tag(addr), g.setIndex(addr)),
                      line)
                << "assoc=" << assoc << " addr=" << std::hex << addr;
        }
    }
}

TEST(Geometry, SingleSetFullyAssociative)
{
    // 8 lines of 16B, 8-way: one set; index bits are zero.
    CacheGeometry g(config(128, 16, 8));
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.setIndex(0xdeadbeef), 0u);
    EXPECT_EQ(g.tag(0x100), 0x10u);
}

TEST(Geometry, DecompositionPartitionsAddressBits)
{
    CacheGeometry g(config(2 * 1024, 64, 2));
    Addr addr = 0xfedcba9876543210ull;
    Addr rebuilt = g.lineAddrFromTag(g.tag(addr), g.setIndex(addr)) +
                   g.offset(addr);
    EXPECT_EQ(rebuilt, addr);
}

} // namespace
} // namespace jcache::core
