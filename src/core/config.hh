/**
 * @file
 * Write-policy taxonomy and cache configuration.
 *
 * The paper's Figure 12 spans write-miss behaviour with three
 * semi-dependent booleans — fetch-on-write?, write-allocate?,
 * write-invalidate? — of which exactly four combinations are useful:
 *
 *   fetch  allocate  invalidate   policy
 *   yes    yes       no           fetch-on-write
 *   no     yes       no           write-validate
 *   no     no        no           write-around
 *   no     no        yes          write-invalidate
 *
 * WriteMissPolicy names those four; classifyWriteMiss() maps the raw
 * booleans onto them and rejects the not-useful combinations, exactly
 * as Section 4 argues.
 */

#ifndef JCACHE_CORE_CONFIG_HH
#define JCACHE_CORE_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "util/types.hh"

namespace jcache::core
{

/** Policy for writes that hit in the cache (Section 3). */
enum class WriteHitPolicy : std::uint8_t
{
    WriteThrough,  //!< write to cache and pass on to the next level
    WriteBack,     //!< write to cache only; dirty victims written back
};

/** Policy for writes that miss in the cache (Section 4). */
enum class WriteMissPolicy : std::uint8_t
{
    FetchOnWrite,     //!< fetch the missed line, allocate, then write
    WriteValidate,    //!< allocate w/o fetch; valid bits mark written bytes
    WriteAround,      //!< write goes around the cache; line untouched
    WriteInvalidate,  //!< write passes on; the indexed line is invalidated
};

/** Victim selection within a set (relevant when assoc > 1). */
enum class ReplacementPolicy : std::uint8_t
{
    Lru,     //!< least recently used (the paper's assumption)
    Fifo,    //!< oldest line in the set
    Random,  //!< pseudo-random way (deterministic xorshift)
};

/** Human-readable policy names (as the paper spells them). */
std::string name(WriteHitPolicy policy);
std::string name(WriteMissPolicy policy);
std::string name(ReplacementPolicy policy);

/** Short codes used by CLI flags and the wire protocol: "wt"/"wb". */
std::string shortCode(WriteHitPolicy policy);

/** Short codes: "fow"/"wv"/"wa"/"wi". */
std::string shortCode(WriteMissPolicy policy);

/** Short codes: "lru"/"fifo"/"random". */
std::string shortCode(ReplacementPolicy policy);

/** Parse a hit-policy short code; nullopt for unknown input. */
std::optional<WriteHitPolicy> parseHitPolicy(const std::string& code);

/** Parse a miss-policy short code; nullopt for unknown input. */
std::optional<WriteMissPolicy> parseMissPolicy(const std::string& code);

/** Parse a replacement-policy short code; nullopt for unknown input. */
std::optional<ReplacementPolicy>
parseReplacementPolicy(const std::string& code);

/** Does this write-miss policy fetch the missed line? */
bool fetchesOnWrite(WriteMissPolicy policy);

/** Does this write-miss policy allocate the written line? */
bool allocatesOnWriteMiss(WriteMissPolicy policy);

/** Does this write-miss policy invalidate the indexed line? */
bool invalidatesOnWriteMiss(WriteMissPolicy policy);

/**
 * Map the Figure 12 booleans onto a policy.
 *
 * @return the policy, or nullopt for the not-useful combinations
 *         (fetching data only to discard it, or allocating a line only
 *         to mark it invalid).
 */
std::optional<WriteMissPolicy>
classifyWriteMiss(bool fetch_on_write, bool write_allocate,
                  bool write_invalidate);

/**
 * Complete configuration of one data cache.
 *
 * Defaults are the paper's base case: 8KB direct-mapped, 16B lines.
 */
struct CacheConfig
{
    /** Total data capacity in bytes (power of two). */
    Count sizeBytes = 8 * 1024;

    /** Line size in bytes (power of two, 4..64 in the paper). */
    unsigned lineBytes = 16;

    /** Set associativity (1 = direct-mapped, the paper's focus). */
    unsigned assoc = 1;

    WriteHitPolicy hitPolicy = WriteHitPolicy::WriteThrough;
    WriteMissPolicy missPolicy = WriteMissPolicy::FetchOnWrite;
    ReplacementPolicy replacement = ReplacementPolicy::Lru;

    /**
     * Valid-bit granularity in bytes for write-validate (paper
     * Section 4): per-word valid bits (4) cost 3.1% of the data
     * array vs 12.5% for per-byte (1).  A write-validate miss whose
     * write does not cover whole valid-bit quanta falls back to
     * fetch-on-write, as the paper suggests real machines would do
     * for sub-word writes.  1 = byte granularity (no fallback).
     */
    unsigned validGranularity = 1;

    /**
     * Throw FatalError if the configuration is malformed or combines
     * policies the paper rules out: the no-write-allocate policies
     * (write-around, write-invalidate) only make sense with
     * write-through, since write-back requires the written data to
     * live in the cache.
     */
    void validate() const;

    /** One-line description, e.g. "8KB/16B/DM wb+write-validate". */
    std::string describe() const;

    bool operator==(const CacheConfig&) const = default;
};

} // namespace jcache::core

#endif // JCACHE_CORE_CONFIG_HH
