# Empty compiler generated dependencies file for jcache-sim.
# This may be replaced when dependencies are built.
