# Empty dependencies file for bench_ext_cpi_comparison.
# This may be replaced when dependencies are built.
