/**
 * @file
 * Implementation of the per-figure experiments.
 */

#include "sim/experiments.hh"

#include <functional>

#include "core/store_pipeline.hh"
#include "core/write_buffer.hh"
#include "core/write_cache.hh"
#include "sim/engine.hh"
#include "sim/parallel.hh"
#include "stats/counter.hh"
#include "stats/table.hh"
#include "util/logging.hh"

namespace jcache::sim
{

namespace
{

using core::CacheConfig;
using core::WriteHitPolicy;
using core::WriteMissPolicy;

CacheConfig
makeConfig(Count size, unsigned line, WriteHitPolicy hit,
           WriteMissPolicy miss)
{
    CacheConfig config;
    config.sizeBytes = size;
    config.lineBytes = line;
    config.assoc = 1;
    config.hitPolicy = hit;
    config.missPolicy = miss;
    return config;
}

/**
 * Per-benchmark sweep over one axis; metric(trace, x) -> value.
 *
 * The (trace x x) grid fans out over the parallel executor; values
 * land in grid-index order, so the figure is identical to a serial
 * sweep regardless of thread count.
 */
template <typename X, typename Metric>
FigureData
sweep(const std::string& title, const std::string& x_axis,
      const std::vector<X>& xs,
      const std::function<std::string(X)>& x_label,
      const TraceSet& traces, Metric metric)
{
    FigureData figure;
    figure.title = title;
    figure.xAxis = x_axis;
    for (X x : xs)
        figure.xLabels.push_back(x_label(x));

    const std::vector<trace::Trace>& ts = traces.traces();
    std::size_t nx = xs.size();
    std::vector<double> values(ts.size() * nx);
    ParallelExecutor().runTasks(values.size(), [&](std::size_t i) {
        values[i] = metric(ts[i / nx], xs[i % nx]);
        return Count{0};
    });

    for (std::size_t ti = 0; ti < ts.size(); ++ti) {
        Series series;
        series.label = ts[ti].name();
        series.values.assign(values.begin() + ti * nx,
                             values.begin() + (ti + 1) * nx);
        figure.series.push_back(std::move(series));
    }
    appendAverage(figure);
    return figure;
}

/**
 * Per-benchmark sweep whose metric is a pure function of one
 * RunResult.  The whole (trace x x) grid goes through the unified
 * engine as a single batch, so under the default one-pass engine
 * every trace is decoded once for the entire figure.
 */
template <typename X>
FigureData
resultSweep(const std::string& title, const std::string& x_axis,
            const std::vector<X>& xs,
            const std::function<std::string(X)>& x_label,
            const TraceSet& traces,
            const std::function<CacheConfig(X)>& config_for,
            const std::function<double(const RunResult&)>& metric,
            bool flush_at_end = false)
{
    FigureData figure;
    figure.title = title;
    figure.xAxis = x_axis;
    for (X x : xs)
        figure.xLabels.push_back(x_label(x));

    std::vector<Request> requests;
    for (const trace::Trace& t : traces.traces()) {
        for (X x : xs)
            requests.push_back({&t, config_for(x), flush_at_end});
    }
    BatchOutcome outcome = runBatch(requests);
    if (!outcome.ok())
        fatal("figure sweep failed: " +
              outcome.report.failures.front().message);

    std::size_t nx = xs.size();
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        Series series;
        series.label = traces.traces()[ti].name();
        for (std::size_t xi = 0; xi < nx; ++xi)
            series.values.push_back(
                metric(outcome.results[ti * nx + xi]));
        figure.series.push_back(std::move(series));
    }
    appendAverage(figure);
    return figure;
}

std::function<std::string(Count)>
sizeLabel()
{
    return [](Count bytes) { return stats::formatSize(bytes); };
}

std::function<std::string(unsigned)>
lineLabel()
{
    return [](unsigned bytes) {
        return std::to_string(bytes) + "B";
    };
}

constexpr Count kBaseCacheSize = 8 * 1024;
constexpr unsigned kBaseLineSize = 16;

/** Direct-mapped write-back fetch-on-write cache of `size` bytes. */
std::function<CacheConfig(Count)>
wbBySize()
{
    return [](Count size) {
        return makeConfig(size, kBaseLineSize,
                          WriteHitPolicy::WriteBack,
                          WriteMissPolicy::FetchOnWrite);
    };
}

/** Direct-mapped 8KB write-back cache with `line`-byte lines. */
std::function<CacheConfig(unsigned)>
wbByLine()
{
    return [](unsigned line) {
        return makeConfig(kBaseCacheSize, line,
                          WriteHitPolicy::WriteBack,
                          WriteMissPolicy::FetchOnWrite);
    };
}

/** The three no-fetch write-miss policies, in paper order. */
const std::vector<WriteMissPolicy> kNoFetchPolicies = {
    WriteMissPolicy::WriteValidate,
    WriteMissPolicy::WriteAround,
    WriteMissPolicy::WriteInvalidate,
};

/**
 * Shared implementation of Figures 13-16.  For each no-fetch policy,
 * the reduction in counted misses relative to fetch-on-write is
 * normalized by the fetch-on-write write-miss count (write_basis =
 * true; Figures 13/15) or total-miss count (Figures 14/16).
 *
 * One batch replays all four policies per (trace, x) point through
 * the unified engine — the fetch-on-write baseline runs once and is
 * shared by the three reduction figures by construction (the one-pass
 * engine dedupes it into a single lane per trace pass), where the
 * serial version re-ran it per policy.
 */
template <typename X>
std::vector<FigureData>
missReductionSweep(const std::string& figure_name,
                   const std::string& x_axis, const std::vector<X>& xs,
                   const std::function<std::string(X)>& x_label,
                   const TraceSet& traces, bool write_basis,
                   const std::function<CacheConfig(X,
                                                   WriteMissPolicy)>&
                       config_for)
{
    // Grid: trace-major, then x, then policy (baseline + the three
    // no-fetch policies).
    std::vector<WriteMissPolicy> policies{
        WriteMissPolicy::FetchOnWrite};
    policies.insert(policies.end(), kNoFetchPolicies.begin(),
                    kNoFetchPolicies.end());
    std::vector<Request> requests;
    for (const trace::Trace& t : traces.traces()) {
        for (X x : xs) {
            for (WriteMissPolicy p : policies)
                requests.push_back({&t, config_for(x, p), false});
        }
    }
    BatchOutcome outcome = runBatch(requests);
    if (!outcome.ok())
        fatal("miss-reduction sweep failed: " +
              outcome.report.failures.front().message);

    std::size_t np = policies.size();
    std::size_t nx = xs.size();
    auto at = [&](std::size_t ti, std::size_t xi,
                  std::size_t pi) -> const RunResult& {
        return outcome.results[ti * nx * np + xi * np + pi];
    };

    std::vector<FigureData> result;
    for (std::size_t pi = 1; pi < np; ++pi) {
        FigureData figure;
        figure.title = figure_name + " — " +
                       core::name(policies[pi]);
        figure.xAxis = x_axis;
        for (X x : xs)
            figure.xLabels.push_back(x_label(x));

        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            Series series;
            series.label = traces.traces()[ti].name();
            for (std::size_t xi = 0; xi < nx; ++xi) {
                const RunResult& base = at(ti, xi, 0);
                const RunResult& alt = at(ti, xi, pi);
                Count basis = write_basis
                    ? base.cache.writeMisses
                    : base.cache.countedMisses();
                double delta =
                    static_cast<double>(base.cache.countedMisses()) -
                    static_cast<double>(alt.cache.countedMisses());
                series.values.push_back(
                    basis ? 100.0 * delta /
                                static_cast<double>(basis)
                          : 0.0);
            }
            figure.series.push_back(std::move(series));
        }
        appendAverage(figure);
        result.push_back(std::move(figure));
    }
    return result;
}

} // namespace

const Series&
FigureData::get(const std::string& label) const
{
    for (const Series& s : series) {
        if (s.label == label)
            return s;
    }
    fatal("figure '" + title + "' has no series '" + label + "'");
}

void
appendAverage(FigureData& figure)
{
    if (figure.series.empty())
        return;
    Series average;
    average.label = "average";
    std::size_t points = figure.series.front().values.size();
    for (std::size_t i = 0; i < points; ++i) {
        double sum = 0.0;
        for (const Series& s : figure.series)
            sum += s.values[i];
        average.values.push_back(
            sum / static_cast<double>(figure.series.size()));
    }
    figure.series.push_back(std::move(average));
}

FigureData
figure1WritesToDirtyVsLineSize(const TraceSet& traces)
{
    return resultSweep<unsigned>(
        "Figure 1: writes to already-dirty lines, 8KB write-back "
        "caches",
        "line size", standardLineSizes(), lineLabel(), traces,
        wbByLine(), [](const RunResult& r) {
            return r.percentWritesToDirtyLines();
        });
}

FigureData
figure2WritesToDirtyVsCacheSize(const TraceSet& traces)
{
    return resultSweep<Count>(
        "Figure 2: writes to already-dirty lines, 16B lines",
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        wbBySize(), [](const RunResult& r) {
            return r.percentWritesToDirtyLines();
        });
}

FigureData
storePipelineComparison(const TraceSet& traces)
{
    FigureData figure;
    figure.title = "Figures 3/4: store-scheme CPI overhead, 8KB/16B";
    figure.xAxis = "benchmark";
    for (const trace::Trace& t : traces.traces())
        figure.xLabels.push_back(t.name());

    CacheConfig config = makeConfig(kBaseCacheSize, kBaseLineSize,
                                    WriteHitPolicy::WriteBack,
                                    WriteMissPolicy::FetchOnWrite);
    for (core::StoreScheme scheme :
         {core::StoreScheme::WriteThroughDirect,
          core::StoreScheme::ProbeThenWrite,
          core::StoreScheme::DelayedWrite}) {
        Series series;
        series.label = core::name(scheme);
        for (const trace::Trace& t : traces.traces()) {
            auto result =
                core::simulateStorePipeline(t, config, scheme);
            series.values.push_back(result.cpiOverhead());
        }
        figure.series.push_back(std::move(series));
    }
    return figure;
}

FigureData
figure5WriteBufferSweep(const TraceSet& traces)
{
    FigureData figure;
    figure.title = "Figure 5: coalescing write buffer merges vs CPI "
                   "(8 entries x 16B)";
    figure.xAxis = "cycles per write retire";

    std::vector<Cycles> retires;
    for (Cycles n = 0; n <= 48; n += 4)
        retires.push_back(n);
    for (Cycles n : retires)
        figure.xLabels.push_back(std::to_string(n));

    Series merged{"% merged (8-entry buffer)", {}};
    Series stall{"write buffer full stall CPI", {}};
    for (Cycles n : retires) {
        double merged_sum = 0.0;
        double stall_sum = 0.0;
        for (const trace::Trace& t : traces.traces()) {
            core::WriteBufferConfig config;
            config.entries = 8;
            config.entryBytes = 16;
            config.retireInterval = n;
            core::CoalescingWriteBuffer buffer(config);
            // The paper ignores cache-miss time here: the clock
            // advances one cycle per instruction plus buffer stalls.
            Cycles now = 0;
            Count instructions = 0;
            for (const trace::TraceRecord& record : t) {
                now += record.instrDelta;
                instructions += record.instrDelta;
                if (record.type == trace::RefType::Write)
                    now += buffer.write(record.addr, now);
            }
            merged_sum += 100.0 * buffer.mergeFraction();
            stall_sum += stats::ratio(buffer.stallCycles(),
                                      instructions);
        }
        auto n_traces = static_cast<double>(traces.size());
        merged.values.push_back(merged_sum / n_traces);
        stall.values.push_back(stall_sum / n_traces);
    }
    figure.series.push_back(std::move(merged));
    figure.series.push_back(std::move(stall));

    // Reference line: percent merged by a 6-entry write cache.
    double wc_sum = 0.0;
    for (const trace::Trace& t : traces.traces()) {
        core::WriteCache wc(6, 8, nullptr);
        for (const trace::TraceRecord& record : t) {
            if (record.type == trace::RefType::Write)
                wc.writeThrough(record.addr, record.size);
        }
        wc_sum += 100.0 * wc.fractionRemoved();
    }
    Series reference{"% merged by 6-entry write cache", {}};
    reference.values.assign(
        retires.size(), wc_sum / static_cast<double>(traces.size()));
    figure.series.push_back(std::move(reference));
    return figure;
}

namespace
{

/** Fraction of a trace's writes removed by an n-entry write cache. */
double
writeCacheRemovalPct(const trace::Trace& t, unsigned entries)
{
    if (entries == 0)
        return 0.0;
    core::WriteCache wc(entries, 8, nullptr);
    for (const trace::TraceRecord& record : t) {
        if (record.type == trace::RefType::Write)
            wc.writeThrough(record.addr, record.size);
    }
    return 100.0 * wc.fractionRemoved();
}

/**
 * Percent of writes a direct-mapped write-back cache removes
 * (= writes to already-dirty lines, whole-line write-backs).
 */
double
writeBackRemovalPct(const trace::Trace& t, Count size)
{
    RunResult r = runOne(
        {&t,
         makeConfig(size, kBaseLineSize, WriteHitPolicy::WriteBack,
                    WriteMissPolicy::FetchOnWrite),
         false});
    return r.percentWritesToDirtyLines();
}

std::vector<unsigned>
writeCacheEntryAxis()
{
    std::vector<unsigned> entries;
    for (unsigned n = 0; n <= 16; ++n)
        entries.push_back(n);
    return entries;
}

} // namespace

FigureData
figure7WriteCacheAbsolute(const TraceSet& traces)
{
    return sweep<unsigned>(
        "Figure 7: write cache absolute traffic reduction",
        "write-cache entries (8B)", writeCacheEntryAxis(),
        [](unsigned n) { return std::to_string(n); }, traces,
        [](const trace::Trace& t, unsigned entries) {
            return writeCacheRemovalPct(t, entries);
        });
}

FigureData
figure8WriteCacheRelative(const TraceSet& traces)
{
    return sweep<unsigned>(
        "Figure 8: write cache reduction relative to a 4KB "
        "write-back cache",
        "write-cache entries (8B)", writeCacheEntryAxis(),
        [](unsigned n) { return std::to_string(n); }, traces,
        [](const trace::Trace& t, unsigned entries) {
            double wb = writeBackRemovalPct(t, 4 * 1024);
            if (wb == 0.0)
                return 0.0;
            return 100.0 * writeCacheRemovalPct(t, entries) / wb;
        });
}

FigureData
figure9WriteCacheVsWbSize(const TraceSet& traces)
{
    FigureData figure;
    figure.title = "Figure 9: relative traffic reduction of a write "
                   "cache vs write-back cache size";
    figure.xAxis = "write-back cache size";
    std::vector<Count> sizes;
    for (Count kb = 1; kb <= 64; kb *= 2)
        sizes.push_back(kb * 1024);
    for (Count s : sizes)
        figure.xLabels.push_back(stats::formatSize(s));

    for (unsigned entries : {15u, 5u, 1u}) {
        Series series;
        series.label = std::to_string(entries) + " entry write cache";
        for (Count size : sizes) {
            double sum = 0.0;
            for (const trace::Trace& t : traces.traces()) {
                double wb = writeBackRemovalPct(t, size);
                double wc = writeCacheRemovalPct(t, entries);
                sum += wb > 0.0 ? 100.0 * wc / wb : 0.0;
            }
            series.values.push_back(
                sum / static_cast<double>(traces.size()));
        }
        figure.series.push_back(std::move(series));
    }
    return figure;
}

FigureData
figure10WriteMissShareVsCacheSize(const TraceSet& traces)
{
    return resultSweep<Count>(
        "Figure 10: write misses as a percent of all misses, 16B "
        "lines",
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        wbBySize(), [](const RunResult& r) {
            return r.percentWriteMissesOfAllMisses();
        });
}

FigureData
figure11WriteMissShareVsLineSize(const TraceSet& traces)
{
    return resultSweep<unsigned>(
        "Figure 11: write misses as a percent of all misses, 8KB "
        "caches",
        "line size", standardLineSizes(), lineLabel(), traces,
        wbByLine(), [](const RunResult& r) {
            return r.percentWriteMissesOfAllMisses();
        });
}

std::vector<FigureData>
figure13WriteMissReductionVsCacheSize(const TraceSet& traces)
{
    return missReductionSweep<Count>(
        "Figure 13: write miss rate reductions, 16B lines",
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        /*write_basis=*/true,
        [](Count size, WriteMissPolicy miss) {
            return makeConfig(size, kBaseLineSize,
                              WriteHitPolicy::WriteThrough, miss);
        });
}

std::vector<FigureData>
figure14TotalMissReductionVsCacheSize(const TraceSet& traces)
{
    return missReductionSweep<Count>(
        "Figure 14: total miss rate reductions, 16B lines",
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        /*write_basis=*/false,
        [](Count size, WriteMissPolicy miss) {
            return makeConfig(size, kBaseLineSize,
                              WriteHitPolicy::WriteThrough, miss);
        });
}

std::vector<FigureData>
figure15WriteMissReductionVsLineSize(const TraceSet& traces)
{
    return missReductionSweep<unsigned>(
        "Figure 15: write miss rate reductions, 8KB caches",
        "line size", standardLineSizes(), lineLabel(), traces,
        /*write_basis=*/true,
        [](unsigned line, WriteMissPolicy miss) {
            return makeConfig(kBaseCacheSize, line,
                              WriteHitPolicy::WriteThrough, miss);
        });
}

std::vector<FigureData>
figure16TotalMissReductionVsLineSize(const TraceSet& traces)
{
    return missReductionSweep<unsigned>(
        "Figure 16: total miss rate reductions, 8KB caches",
        "line size", standardLineSizes(), lineLabel(), traces,
        /*write_basis=*/false,
        [](unsigned line, WriteMissPolicy miss) {
            return makeConfig(kBaseCacheSize, line,
                              WriteHitPolicy::WriteThrough, miss);
        });
}

bool
verifyFigure17PartialOrder(const TraceSet& traces, Count cache_size,
                           unsigned line_bytes,
                           std::vector<std::string>* violations)
{
    // All four policies per trace in one batch: write-through caches
    // throughout, so every policy is legal and comparisons are
    // policy-only.  Under the one-pass engine each trace is decoded
    // once for its four lanes.
    const std::vector<WriteMissPolicy> policies = {
        WriteMissPolicy::FetchOnWrite,
        WriteMissPolicy::WriteValidate,
        WriteMissPolicy::WriteAround,
        WriteMissPolicy::WriteInvalidate,
    };
    std::vector<Request> requests;
    for (const trace::Trace& t : traces.traces()) {
        for (WriteMissPolicy miss : policies) {
            requests.push_back(
                {&t,
                 makeConfig(cache_size, line_bytes,
                            WriteHitPolicy::WriteThrough, miss),
                 false});
        }
    }
    BatchOutcome outcome = runBatch(requests);
    if (!outcome.ok())
        fatal("figure 17 sweep failed: " +
              outcome.report.failures.front().message);
    auto misses = [&](std::size_t ti, std::size_t pi) {
        return outcome.results[ti * policies.size() + pi]
            .cache.countedMisses();
    };

    bool ok = true;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        const trace::Trace& t = traces.traces()[ti];
        Count fow = misses(ti, 0);
        Count wv = misses(ti, 1);
        Count wa = misses(ti, 2);
        Count wi = misses(ti, 3);
        auto check = [&](bool cond, const std::string& what) {
            if (cond)
                return;
            ok = false;
            if (violations) {
                violations->push_back(
                    t.name() + " @" + stats::formatSize(cache_size) +
                    "/" + std::to_string(line_bytes) + "B: " + what);
            }
        };
        check(wv <= wi, "write-validate > write-invalidate");
        check(wa <= wi, "write-around > write-invalidate");
        check(wi <= fow, "write-invalidate > fetch-on-write");
    }
    return ok;
}

namespace
{

/** Shared implementation of Figures 18/19. */
template <typename X>
FigureData
trafficComponents(const std::string& title, const std::string& x_axis,
                  const std::vector<X>& xs,
                  const std::function<std::string(X)>& x_label,
                  const TraceSet& traces,
                  const std::function<CacheConfig(X,
                                                  WriteHitPolicy)>&
                      config_for)
{
    FigureData figure;
    figure.title = title;
    figure.xAxis = x_axis;
    for (X x : xs)
        figure.xLabels.push_back(x_label(x));

    // Batch: trace-major, then x, then hit policy (WT, WB).
    std::vector<Request> requests;
    for (const trace::Trace& t : traces.traces()) {
        for (X x : xs) {
            requests.push_back(
                {&t, config_for(x, WriteHitPolicy::WriteThrough),
                 false});
            requests.push_back(
                {&t, config_for(x, WriteHitPolicy::WriteBack),
                 false});
        }
    }
    BatchOutcome outcome = runBatch(requests);
    if (!outcome.ok())
        fatal("traffic sweep failed: " +
              outcome.report.failures.front().message);

    std::size_t nx = xs.size();
    Series wt{"write-through", {}};
    Series wb{"write-back", {}};
    Series wm{"write misses", {}};
    Series rm{"read misses", {}};
    for (std::size_t xi = 0; xi < nx; ++xi) {
        double wt_sum = 0, wb_sum = 0, wm_sum = 0, rm_sum = 0;
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            const RunResult& r_wt =
                outcome.results[ti * nx * 2 + xi * 2];
            const RunResult& r_wb =
                outcome.results[ti * nx * 2 + xi * 2 + 1];
            wt_sum += r_wt.transactionsPerInstruction();
            wb_sum += r_wb.transactionsPerInstruction();
            wm_sum += stats::ratio(r_wb.cache.writeMissFetches,
                                   r_wb.instructions);
            rm_sum += stats::ratio(r_wb.cache.readMisses,
                                   r_wb.instructions);
        }
        auto n = static_cast<double>(traces.size());
        wt.values.push_back(wt_sum / n);
        wb.values.push_back(wb_sum / n);
        wm.values.push_back(wm_sum / n);
        rm.values.push_back(rm_sum / n);
    }
    figure.series = {std::move(wt), std::move(wb), std::move(wm),
                     std::move(rm)};
    return figure;
}

/** Shared implementation of the dirty-victim sweeps (Figures 20-25). */
template <typename X>
FigureData
victimSweep(const std::string& title, const std::string& x_axis,
            const std::vector<X>& xs,
            const std::function<std::string(X)>& x_label,
            const TraceSet& traces,
            const std::function<CacheConfig(X)>& config_for,
            const std::function<double(const RunResult&)>& metric)
{
    return resultSweep<X>(title, x_axis, xs, x_label, traces,
                          config_for, metric,
                          /*flush_at_end=*/true);
}

} // namespace

FigureData
figure18TrafficVsCacheSize(const TraceSet& traces)
{
    return trafficComponents<Count>(
        "Figure 18: back-side transactions per instruction vs cache "
        "size (16B lines)",
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        [](Count size, WriteHitPolicy hit) {
            return makeConfig(size, kBaseLineSize, hit,
                              WriteMissPolicy::FetchOnWrite);
        });
}

FigureData
figure19TrafficVsLineSize(const TraceSet& traces)
{
    return trafficComponents<unsigned>(
        "Figure 19: back-side transactions per instruction vs line "
        "size (8KB caches)",
        "line size", standardLineSizes(), lineLabel(), traces,
        [](unsigned line, WriteHitPolicy hit) {
            return makeConfig(kBaseCacheSize, line, hit,
                              WriteMissPolicy::FetchOnWrite);
        });
}

FigureData
figure20VictimsDirtyVsCacheSize(const TraceSet& traces,
                                bool flush_stop)
{
    return victimSweep<Count>(
        std::string("Figure 20: percent of victims dirty vs cache "
                    "size, 16B lines (") +
            (flush_stop ? "flush stop)" : "cold stop)"),
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        wbBySize(), [flush_stop](const RunResult& r) {
            return r.percentVictimsDirty(flush_stop);
        });
}

FigureData
figure21BytesDirtyInDirtyVictimVsCacheSize(const TraceSet& traces,
                                           bool flush_stop)
{
    return victimSweep<Count>(
        std::string("Figure 21: percent of bytes dirty in a dirty "
                    "victim vs cache size, 16B lines (") +
            (flush_stop ? "flush stop)" : "cold stop)"),
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        wbBySize(), [flush_stop](const RunResult& r) {
            return r.percentBytesDirtyInDirtyVictims(flush_stop);
        });
}

FigureData
figure22BytesDirtyPerVictimVsCacheSize(const TraceSet& traces)
{
    return victimSweep<Count>(
        "Figure 22: percent of bytes dirty per victim vs cache size, "
        "16B lines (flush stop)",
        "cache size", standardCacheSizes(), sizeLabel(), traces,
        wbBySize(), [](const RunResult& r) {
            return r.percentBytesDirtyPerVictim(true);
        });
}

FigureData
figure23VictimsDirtyVsLineSize(const TraceSet& traces,
                               bool flush_stop)
{
    return victimSweep<unsigned>(
        std::string("Figure 23: percent of victims dirty vs line "
                    "size, 8KB caches (") +
            (flush_stop ? "flush stop)" : "cold stop)"),
        "line size", standardLineSizes(), lineLabel(), traces,
        wbByLine(), [flush_stop](const RunResult& r) {
            return r.percentVictimsDirty(flush_stop);
        });
}

FigureData
figure24BytesDirtyInDirtyVictimVsLineSize(const TraceSet& traces,
                                          bool flush_stop)
{
    return victimSweep<unsigned>(
        std::string("Figure 24: percent of bytes dirty in a dirty "
                    "victim vs line size, 8KB caches (") +
            (flush_stop ? "flush stop)" : "cold stop)"),
        "line size", standardLineSizes(), lineLabel(), traces,
        wbByLine(), [flush_stop](const RunResult& r) {
            return r.percentBytesDirtyInDirtyVictims(flush_stop);
        });
}

FigureData
figure25BytesDirtyPerVictimVsLineSize(const TraceSet& traces)
{
    return victimSweep<unsigned>(
        "Figure 25: percent of bytes dirty per victim vs line size, "
        "8KB caches (flush stop)",
        "line size", standardLineSizes(), lineLabel(), traces,
        wbByLine(), [](const RunResult& r) {
            return r.percentBytesDirtyPerVictim(true);
        });
}

std::vector<std::pair<std::string, trace::TraceSummary>>
table1Characteristics(const TraceSet& traces)
{
    std::vector<std::pair<std::string, trace::TraceSummary>> rows;
    for (const trace::Trace& t : traces.traces())
        rows.emplace_back(t.name(), trace::summarize(t));
    return rows;
}

} // namespace jcache::sim
