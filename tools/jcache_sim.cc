/**
 * @file
 * jcache-sim: run one cache configuration over a trace (file or
 * built-in workload) and print the full statistics block.
 *
 * Usage:
 *   jcache-sim <trace.jct | workload-name>
 *       [--size KB] [--line B] [--assoc N]
 *       [--hit wt|wb] [--miss fow|wv|wa|wi]
 *       [--replacement lru|fifo|random] [--no-flush]
 *       [--jobs N] [--progress] [--json [path]]
 *       [--engine percell|onepass] [--version]
 *
 * Defaults: 8KB, 16B lines, direct-mapped, write-back,
 * fetch-on-write — the paper's base configuration.
 *
 * The replay goes through the unified engine API (sim::runBatch, a
 * one-request batch); --engine selects the replay strategy, which
 * never changes the printed numbers.  --progress adds the run's
 * observability summary — wall time, replayed M ins/s — on stderr,
 * --json exports the run report, and --jobs sets the worker width,
 * all spelled identically across every jcache tool.  The statistics
 * block prints through the same renderer jcache-client uses, so an
 * offline run and a service run are byte-identical.
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "cli_common.hh"
#include "service/render.hh"
#include "sim/engine.hh"
#include "trace/import.hh"
#include "util/logging.hh"
#include "util/version.hh"
#include "workloads/workload.hh"

namespace
{

using namespace jcache;

constexpr unsigned kCommonFlags = tools::kFlagJobs |
                                  tools::kFlagProgress |
                                  tools::kFlagJson | tools::kFlagEngine;

int
usage()
{
    std::cerr <<
        "usage: jcache-sim <trace.jct | workload-name>\n"
        "  [--size KB] [--line B] [--assoc N] [--hit wt|wb]\n"
        "  [--miss fow|wv|wa|wi] [--replacement lru|fifo|random]\n"
        "  [--no-flush] " << tools::commonUsage(kCommonFlags) <<
        " [--version]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc >= 2 && std::string(argv[1]) == "--version") {
        std::cout << versionLine("jcache-sim") << "\n";
        return 0;
    }
    if (argc < 2)
        return usage();

    core::CacheConfig config;
    config.hitPolicy = core::WriteHitPolicy::WriteBack;
    bool flush = true;
    tools::CommonFlags common;

    try {
        for (int i = 2; i < argc; ++i) {
            if (tools::parseCommonFlag(argc, argv, i, kCommonFlags,
                                       common))
                continue;
            std::string flag = argv[i];
            if (flag == "--no-flush") {
                flush = false;
                continue;
            }
            if (i + 1 >= argc)
                return usage();
            std::string value = argv[++i];
            if (flag == "--size") {
                config.sizeBytes =
                    std::strtoull(value.c_str(), nullptr, 10) * 1024;
            } else if (flag == "--line") {
                config.lineBytes = static_cast<unsigned>(
                    std::strtoul(value.c_str(), nullptr, 10));
            } else if (flag == "--assoc") {
                config.assoc = static_cast<unsigned>(
                    std::strtoul(value.c_str(), nullptr, 10));
            } else if (flag == "--hit") {
                auto policy = core::parseHitPolicy(value);
                fatalIf(!policy, "unknown hit policy: " + value +
                                     " (use wt|wb)");
                config.hitPolicy = *policy;
            } else if (flag == "--miss") {
                auto policy = core::parseMissPolicy(value);
                fatalIf(!policy, "unknown miss policy: " + value +
                                     " (use fow|wv|wa|wi)");
                config.missPolicy = *policy;
            } else if (flag == "--replacement") {
                auto policy = core::parseReplacementPolicy(value);
                fatalIf(!policy,
                        "unknown replacement policy: " + value +
                            " (use lru|fifo|random)");
                config.replacement = *policy;
            } else {
                return usage();
            }
        }
        config.validate();

        std::string source = argv[1];
        trace::Trace trace = std::filesystem::exists(source)
            ? trace::loadAnyTrace(source)
            : workloads::generateTrace(
                  *workloads::makeWorkload(source));

        sim::BatchOptions options;
        options.engine = common.engine;
        options.jobs = common.jobs;
        sim::BatchOutcome outcome =
            sim::runBatch({{&trace, config, flush}}, options);
        for (const sim::JobFailure& f : outcome.report.failures)
            std::cerr << "error: " << f.message << "\n";
        if (!outcome.ok())
            return 1;
        service::renderRunTable(std::cout, outcome.results.front(),
                                trace.name(), flush);
        if (common.progress)
            std::cerr << outcome.report.summary() << "\n";
        tools::writeJsonSink(common, [&](std::ostream& os) {
            outcome.report.writeJson(os);
        });
        return 0;
    } catch (const FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
