/**
 * @file
 * Zero-copy block iteration over a trace.
 *
 * The one-pass engine (sim/multiconfig.hh) replays a trace against
 * many cache configurations at once.  To keep every lane's working
 * set hot it walks the trace in fixed-size blocks: decode a block of
 * records once, replay it through every lane, move on.  BlockRange
 * packages that walk as a range of TraceBlock views over the trace's
 * flat record array — no records are copied, a block is just a
 * pointer + count into Trace::records().
 *
 * Semantics at the edges:
 *  - an empty trace yields zero blocks (begin() == end());
 *  - when the record count is not a multiple of the block size, the
 *    final block is partial and holds the remainder;
 *  - a block size of 0 is clamped to 1 so iteration always advances.
 */

#ifndef JCACHE_TRACE_BLOCKS_HH
#define JCACHE_TRACE_BLOCKS_HH

#include <cstddef>

#include "trace/trace.hh"

namespace jcache::trace
{

/**
 * Default records per block for the one-pass engine.
 *
 * Chosen so a block of decoded pieces (~16 bytes each, at most two
 * pieces per record) stays comfortably inside L2 alongside the lane
 * state it is replayed against; measured best among {512..16384} on
 * the paper's Figure 13-16 grids.
 */
inline constexpr std::size_t kDefaultBlockRecords = 2048;

/**
 * One contiguous block of trace records — a non-owning view.
 *
 * Valid only while the underlying Trace is alive and unmodified.
 */
struct TraceBlock
{
    /** First record of the block (never null for a yielded block). */
    const TraceRecord* records = nullptr;

    /** Number of records in the block (>= 1 for a yielded block). */
    std::size_t count = 0;

    /** Index of records[0] within the whole trace. */
    std::size_t offset = 0;
};

/**
 * Forward range of TraceBlock views over one trace.
 *
 * Usage:
 * @code
 *   for (trace::TraceBlock b : trace::BlockRange(t))
 *       replay(b.records, b.count);
 * @endcode
 */
class BlockRange
{
  public:
    /**
     * Iterate `t` in blocks of `blockRecords` records.
     *
     * @param t             trace to walk; must outlive the range
     * @param blockRecords  records per block; 0 is clamped to 1
     */
    explicit BlockRange(const Trace& t,
                        std::size_t blockRecords = kDefaultBlockRecords)
        : first_(t.records().data()), total_(t.size()),
          block_(blockRecords == 0 ? 1 : blockRecords)
    {
    }

    /** Input iterator yielding successive TraceBlock views. */
    class Iterator
    {
      public:
        Iterator(const TraceRecord* first, std::size_t total,
                 std::size_t block, std::size_t pos)
            : first_(first), total_(total), block_(block), pos_(pos)
        {
        }

        /** The block starting at the current position. */
        TraceBlock operator*() const
        {
            std::size_t n = total_ - pos_;
            if (n > block_)
                n = block_;
            return TraceBlock{first_ + pos_, n, pos_};
        }

        Iterator& operator++()
        {
            pos_ += block_;
            if (pos_ > total_)
                pos_ = total_;
            return *this;
        }

        bool operator==(const Iterator& other) const
        {
            return pos_ == other.pos_;
        }

        bool operator!=(const Iterator& other) const
        {
            return pos_ != other.pos_;
        }

      private:
        const TraceRecord* first_;
        std::size_t total_;
        std::size_t block_;
        std::size_t pos_;
    };

    Iterator begin() const { return Iterator(first_, total_, block_, 0); }
    Iterator end() const { return Iterator(first_, total_, block_, total_); }

    /** Number of blocks the range will yield. */
    std::size_t blockCount() const
    {
        return (total_ + block_ - 1) / block_;
    }

  private:
    const TraceRecord* first_;
    std::size_t total_;
    std::size_t block_;
};

} // namespace jcache::trace

#endif // JCACHE_TRACE_BLOCKS_HH
