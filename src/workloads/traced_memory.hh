/**
 * @file
 * Instrumented storage for workload trace capture.
 *
 * The paper's traces came from executing real programs on an
 * architectural simulator.  Our substitute executes real algorithms
 * in-process, but routes every data access through TracedArray, which
 * records the reference (virtual address, size, read/write) into a
 * TraceRecorder while performing the actual operation on backing
 * storage — so control flow (pivot selection, parser actions, router
 * wavefronts) depends on real data, exactly as in a traced execution.
 *
 * TracedMemory is a bump allocator handing out virtual addresses, so
 * distinct structures occupy distinct, stable address ranges, giving
 * the cache models a realistic address space layout.
 */

#ifndef JCACHE_WORKLOADS_TRACED_MEMORY_HH
#define JCACHE_WORKLOADS_TRACED_MEMORY_HH

#include <cstddef>
#include <vector>

#include "trace/recorder.hh"
#include "util/bitops.hh"
#include "util/types.hh"

namespace jcache::workloads
{

/**
 * Virtual address space with a bump allocator.
 */
class TracedMemory
{
  public:
    /**
     * @param recorder sink for the reference stream (not owned).
     * @param base     first address handed out; defaults past the
     *                 zero page like a real process image.
     */
    explicit TracedMemory(trace::TraceRecorder& recorder,
                          Addr base = 0x10000)
        : recorder_(&recorder), next_(base)
    {}

    /** Allocate `bytes` of address space with the given alignment. */
    Addr allocate(Count bytes, unsigned align = 8)
    {
        next_ = alignUp(next_, align);
        Addr addr = next_;
        next_ += bytes;
        return addr;
    }

    /** Top of the allocated region (current footprint end). */
    Addr brk() const { return next_; }

    trace::TraceRecorder& recorder() { return *recorder_; }

  private:
    trace::TraceRecorder* recorder_;
    Addr next_;
};

/**
 * A fixed-size array whose element accesses are traced.
 *
 * @tparam T element type; must be 4 or 8 bytes wide (the MultiTitan
 *           had no byte loads/stores, so workloads use words and
 *           doublewords only).
 */
template <typename T>
class TracedArray
{
    static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                  "traced elements must be 4 or 8 bytes (no byte "
                  "accesses on the MultiTitan)");

  public:
    /** Allocate and zero-initialize n elements. */
    TracedArray(TracedMemory& mem, std::size_t n)
        : mem_(&mem), base_(mem.allocate(n * sizeof(T), sizeof(T))),
          data_(n)
    {}

    std::size_t size() const { return data_.size(); }

    /** Virtual address of element i. */
    Addr addrOf(std::size_t i) const { return base_ + i * sizeof(T); }

    /** Traced read of element i. */
    T get(std::size_t i) const
    {
        mem_->recorder().read(addrOf(i), sizeof(T));
        return data_[i];
    }

    /** Traced write of element i. */
    void set(std::size_t i, T value)
    {
        mem_->recorder().write(addrOf(i), sizeof(T));
        data_[i] = value;
    }

    /** Traced read-modify-write convenience. */
    template <typename Fn>
    void update(std::size_t i, Fn&& fn)
    {
        set(i, fn(get(i)));
    }

    /**
     * Untraced peek, for test assertions and result checks that are
     * not part of the simulated program.
     */
    T peek(std::size_t i) const { return data_[i]; }

    /** Untraced poke, for initialization that a loader would do. */
    void poke(std::size_t i, T value) { data_[i] = value; }

  private:
    TracedMemory* mem_;
    Addr base_;
    std::vector<T> data_;
};

} // namespace jcache::workloads

#endif // JCACHE_WORKLOADS_TRACED_MEMORY_HH
