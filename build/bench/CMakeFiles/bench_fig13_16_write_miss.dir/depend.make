# Empty dependencies file for bench_fig13_16_write_miss.
# This may be replaced when dependencies are built.
