/**
 * @file
 * Reproduces Tables 2/3 quantitatively: the storage bill (in bits)
 * of high-performance write-through and write-back organizations
 * across cache sizes, showing the paper's claim that the two are
 * surprisingly similar once each is built for performance.
 */

#include <iostream>

#include "core/hw_cost.hh"
#include "stats/table.hh"

int
main()
{
    using namespace jcache;
    using core::CacheConfig;
    using core::HwCost;
    using core::HwCostParams;

    HwCostParams params;

    stats::TextTable table(
        "Table 3 (quantified): storage bits for high-performance "
        "write-through vs write-back");
    table.setHeader({"config", "org", "data", "tags", "valid",
                     "dirty", "protect", "buffers", "total",
                     "overhead%"});

    for (Count kb : {4u, 8u, 16u, 32u}) {
        CacheConfig config;
        config.sizeBytes = kb * 1024;
        config.lineBytes = 16;

        auto add = [&](const std::string& org, const HwCost& cost) {
            table.addRow(
                {stats::formatSize(config.sizeBytes) + "/16B " + org,
                 org, std::to_string(cost.dataBits),
                 std::to_string(cost.tagBits),
                 std::to_string(cost.validBits),
                 std::to_string(cost.dirtyBits),
                 std::to_string(cost.protectionBits),
                 std::to_string(cost.bufferBits),
                 std::to_string(cost.totalBits()),
                 stats::formatFixed(100.0 * cost.overheadFraction(),
                                    1)});
        };
        add("WT", core::writeThroughCost(config, params));
        add("WB", core::writeBackCost(config, params));
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout <<
        "\nWT = write-through + parity + 4-entry write buffer + "
        "5-entry write cache.\nWB = write-back + word ECC + line "
        "dirty bits + dirty-victim and delayed-write\nregisters.  "
        "Paper reference (Section 3.3): the WT cache's extra buffer "
        "entries\nare offset by the WB cache's dirty bits and "
        "heavier ECC, leaving totals within\na few percent; parity "
        "is 2/3 the overhead of ECC and tolerates more errors.\n";
    return 0;
}
