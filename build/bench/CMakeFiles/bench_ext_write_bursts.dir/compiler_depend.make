# Empty compiler generated dependencies file for bench_ext_write_bursts.
# This may be replaced when dependencies are built.
