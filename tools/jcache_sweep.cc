/**
 * @file
 * jcache-sweep: sweep one axis of a cache configuration over a trace
 * and print a metric matrix — the interactive counterpart of the
 * figure benches.
 *
 * Usage:
 *   jcache-sweep <trace.jct | workload> --axis size|line|assoc
 *       [--metric miss|traffic|dirty]
 *       [--hit wt|wb] [--miss fow|wv|wa|wi]
 *
 * Metrics:
 *   miss    — counted-miss ratio (%)
 *   traffic — back-side transactions per instruction
 *   dirty   — percent of writes to already-dirty lines
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "sim/run.hh"
#include "stats/counter.hh"
#include "stats/table.hh"
#include "trace/file_io.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

namespace
{

using namespace jcache;

int
usage()
{
    std::cerr <<
        "usage: jcache-sweep <trace.jct | workload> --axis "
        "size|line|assoc\n"
        "  [--metric miss|traffic|dirty] [--hit wt|wb] "
        "[--miss fow|wv|wa|wi]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();

    std::string axis = "size";
    std::string metric = "miss";
    core::CacheConfig base;
    base.hitPolicy = core::WriteHitPolicy::WriteBack;

    try {
        for (int i = 2; i + 1 < argc; i += 2) {
            std::string flag = argv[i];
            std::string value = argv[i + 1];
            if (flag == "--axis") {
                axis = value;
            } else if (flag == "--metric") {
                metric = value;
            } else if (flag == "--hit") {
                base.hitPolicy = value == "wb"
                    ? core::WriteHitPolicy::WriteBack
                    : core::WriteHitPolicy::WriteThrough;
            } else if (flag == "--miss") {
                if (value == "fow") {
                    base.missPolicy =
                        core::WriteMissPolicy::FetchOnWrite;
                } else if (value == "wv") {
                    base.missPolicy =
                        core::WriteMissPolicy::WriteValidate;
                } else if (value == "wa") {
                    base.missPolicy =
                        core::WriteMissPolicy::WriteAround;
                } else if (value == "wi") {
                    base.missPolicy =
                        core::WriteMissPolicy::WriteInvalidate;
                } else {
                    return usage();
                }
            } else {
                return usage();
            }
        }

        std::string source = argv[1];
        trace::Trace trace = std::filesystem::exists(source)
            ? trace::loadTrace(source)
            : workloads::generateTrace(
                  *workloads::makeWorkload(source));

        // Build the sweep points.
        std::vector<core::CacheConfig> points;
        std::vector<std::string> labels;
        if (axis == "size") {
            for (Count kb = 1; kb <= 128; kb *= 2) {
                core::CacheConfig c = base;
                c.sizeBytes = kb * 1024;
                points.push_back(c);
                labels.push_back(stats::formatSize(c.sizeBytes));
            }
        } else if (axis == "line") {
            for (unsigned line : {4u, 8u, 16u, 32u, 64u}) {
                core::CacheConfig c = base;
                c.lineBytes = line;
                points.push_back(c);
                labels.push_back(std::to_string(line) + "B");
            }
        } else if (axis == "assoc") {
            for (unsigned ways : {1u, 2u, 4u, 8u}) {
                core::CacheConfig c = base;
                c.assoc = ways;
                points.push_back(c);
                labels.push_back(std::to_string(ways) + "-way");
            }
        } else {
            return usage();
        }

        stats::TextTable table("sweep of " + axis + " on '" +
                               trace.name() + "' (" +
                               core::name(base.hitPolicy) + "+" +
                               core::name(base.missPolicy) + ")");
        std::vector<std::string> header{"metric: " + metric};
        for (const std::string& l : labels)
            header.push_back(l);
        table.setHeader(header);

        std::vector<double> values;
        for (const core::CacheConfig& config : points) {
            sim::RunResult r = sim::runTrace(trace, config, false);
            if (metric == "miss") {
                values.push_back(100.0 *
                                 stats::ratio(r.cache.countedMisses(),
                                              r.cache.accesses()));
            } else if (metric == "traffic") {
                values.push_back(r.transactionsPerInstruction());
            } else if (metric == "dirty") {
                values.push_back(r.percentWritesToDirtyLines());
            } else {
                return usage();
            }
        }
        table.addRow(metric, values,
                     metric == "traffic" ? 4 : 2);
        table.print(std::cout);
        return 0;
    } catch (const FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
